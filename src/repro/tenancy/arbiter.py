"""Cache partition-vs-share arbitration (the Hoard question).

One :class:`TenantCacheArbiter` attaches to each server's
:class:`~repro.core.cache.CacheManager` and takes over two decisions on
the insert path: *may this tenant cache this file* (quota + slab
admission) and *whose file pays for the room* (victim selection).  Hits
and the byte budget stay the cache's own; the arbiter only adds tenant
ownership on top.  Three modes:

``shared``
    Status quo ante: one global pool, victims from the cache's own
    eviction policy (global LRU with the ``lru`` spec policy).  One
    tenant's storm evicts anyone's files.
``dedicated``
    Hard slabs: each tenant owns ``capacity × weight/Σweights`` bytes of
    every cache and only ever evicts its own files; a tenant that would
    overflow its slab evicts from itself or is refused.  Perfect
    isolation, zero statistical multiplexing.
``weighted``
    Weighted-fair with per-tenant watermarks: tenants borrow freely
    while the cache has room, but when an insert needs space the victim
    comes from the tenant *most over its watermark* (LRU within the
    tenant; deterministic lowest-id tie-break).  A tenant under its
    watermark is never robbed while anyone is over — the aggressor's
    churn cannibalizes the aggressor.

All iteration is over insertion-ordered dicts keyed by sorted tenant
ids, so victim choice is deterministic and replayable (SIM004).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional

from .quota import QuotaLedger
from .tenant import tenant_of_path

__all__ = ["TENANCY_MODES", "TenantCacheArbiter"]

TENANCY_MODES = ("shared", "dedicated", "weighted")


class TenantCacheArbiter:
    """Per-cache tenancy arbitration over one CacheManager's index."""

    __slots__ = (
        "mode",
        "ledger",
        "cache",
        "resolver",
        "_weights",
        "_total_weight",
        "_owner",
        "_used_by",
        "_order",
    )

    def __init__(
        self,
        mode: str,
        ledger: QuotaLedger,
        weights: dict[int, float],
        resolver: Optional[Callable[[str], Optional[int]]] = tenant_of_path,
    ):
        if mode not in TENANCY_MODES:
            raise ValueError(f"unknown tenancy cache mode {mode!r}")
        self.mode = mode
        self.ledger = ledger
        self.cache = None
        self.resolver = resolver
        self._weights: dict[int, float] = {}
        self._total_weight = 0.0
        #: resident path -> owning tenant (this cache only)
        self._owner: dict[str, int] = {}
        #: tenant -> resident bytes (this cache only)
        self._used_by: dict[int, int] = {}
        #: tenant -> LRU-ordered ``path -> size`` (victim selection)
        self._order: dict[int, OrderedDict[str, int]] = {}
        for tid in sorted(weights):
            self.add_tenant(tid, weights[tid])

    def attach(self, cache) -> "TenantCacheArbiter":
        """Install onto a CacheManager; returns self for chaining."""
        if cache.arbiter is not None:
            raise ValueError(f"cache {cache.name} already has an arbiter")
        self.cache = cache
        cache.arbiter = self
        return self

    def add_tenant(self, tenant: int, weight: float) -> None:
        """Register a tenant (idempotent; keyed in sorted-id order)."""
        if tenant in self._weights:
            return
        if weight <= 0:
            raise ValueError("tenant weight must be positive")
        self._weights[tenant] = weight
        self._total_weight += weight
        self._used_by[tenant] = 0
        self._order[tenant] = OrderedDict()
        if sorted(self._weights) != list(self._weights):
            # Re-key in sorted order so victim scans stay deterministic
            # regardless of registration order (arrivals register lazily).
            self._weights = {t: self._weights[t] for t in sorted(self._weights)}
            self._used_by = {t: self._used_by[t] for t in sorted(self._used_by)}
            self._order = {t: self._order[t] for t in sorted(self._order)}

    # -- derived shares ----------------------------------------------------
    def share_bytes(self, tenant: int) -> int:
        """The tenant's slab (``dedicated``) / watermark (``weighted``)."""
        w = self._weights.get(tenant)
        if w is None or self._total_weight <= 0:
            return 0
        return int(self.cache.capacity_bytes * w / self._total_weight)

    def resident_bytes(self, tenant: int) -> int:
        return self._used_by.get(tenant, 0)

    def _resolve(self, tenant: Optional[int], path: str) -> Optional[int]:
        if tenant is None and self.resolver is not None:
            tenant = self.resolver(path)
        if tenant is not None and tenant not in self._weights:
            return None
        return tenant

    # -- insert-path decisions --------------------------------------------
    def admit(self, tenant: Optional[int], path: str, size: int) -> bool:
        """Quota + slab admission for one insert (False = refuse)."""
        t = self._resolve(tenant, path)
        if t is None:
            return True
        if self.ledger.would_exceed(t, size):
            self.ledger.refuse(t)
            return False
        if self.mode == "dedicated" and size > self.share_bytes(t):
            return False
        return True

    def make_room(self, tenant: Optional[int], path: str, size: int) -> bool:
        """Evict until ``size`` fits, per mode (False = refuse insert)."""
        cache = self.cache
        t = self._resolve(tenant, path)
        if self.mode == "dedicated" and t is not None:
            share = self.share_bytes(t)
            order = self._order[t]
            while (
                self._used_by[t] + size > share
                or cache.used_bytes + size > cache.capacity_bytes
            ):
                victim = next(iter(order), None)
                if victim is None:
                    return False
                cache._evict(victim)
            return True
        if self.mode == "weighted" and t is not None:
            while cache.used_bytes + size > cache.capacity_bytes:
                victim = self._weighted_victim(t)
                if victim is None:
                    return False
                cache._evict(victim)
            return True
        # shared mode, or a path outside every registered namespace:
        # the cache's own global policy picks victims.
        while cache.used_bytes + size > cache.capacity_bytes:
            victim = cache.policy.victim()
            if victim is None:
                return False
            cache._evict(victim)
        return True

    def _weighted_victim(self, inserting: int) -> Optional[str]:
        """The LRU head of the tenant most over its watermark.

        Scans the (sorted-id) tenant table: strictly-greatest excess
        wins, first-seen (lowest id) breaks ties.  When nobody is over
        water the inserting tenant pays for its own growth; a tenant at
        or under its watermark is only robbed when no over-water tenant
        has a file left to give.
        """
        donor = None
        donor_excess = None
        for tid, order in self._order.items():
            if not order:
                continue
            excess = self._used_by[tid] - self.share_bytes(tid)
            if donor_excess is None or excess > donor_excess:
                donor = tid
                donor_excess = excess
        if donor is None:
            return None
        if donor_excess is not None and donor_excess <= 0:
            own = self._order.get(inserting)
            if own:
                donor = inserting
        return next(iter(self._order[donor]))

    # -- residency bookkeeping --------------------------------------------
    def on_insert(self, tenant: Optional[int], path: str, size: int) -> None:
        t = self._resolve(tenant, path)
        if t is None:
            return
        self._owner[path] = t
        self._used_by[t] += size
        self._order[t][path] = size
        self.ledger.charge(t, size)

    def on_evict(self, path: str) -> None:
        t = self._owner.pop(path, None)
        if t is None:
            return
        size = self._order[t].pop(path)
        self._used_by[t] -= size
        self.ledger.release(t, size)

    def on_access(self, path: str) -> None:
        t = self._owner.get(path)
        if t is not None:
            self._order[t].move_to_end(path)
