"""Ablation: cache pre-population vs the epoch-1 penalty (§IV-C).

The paper: "Our future work will investigate utilizing prefetching
techniques to pre-populate the HVAC cache and reduce the performance
overhead of epoch-1."  This bench runs that study: first-epoch time
with a cold cache, versus after a placement-aware prefetch pass, versus
the warm steady state.
"""

import pytest

from repro.analysis import format_table
from repro.cluster import Allocation, SUMMIT
from repro.core import CachePrefetcher, HVACDeployment
from repro.dl import IMAGENET21K, RESNET50, SyntheticDataset, TrainingConfig, TrainingJob
from repro.simcore import Environment
from repro.storage import GPFS

from conftest import bench_scale


def _run():
    scale = bench_scale()
    n_nodes = 8
    n_ranks = n_nodes * scale.procs_per_node
    sample = n_ranks * scale.files_per_rank

    def training(prefetch: bool):
        env = Environment()
        dataset, factor = SyntheticDataset.scaled(IMAGENET21K, sample)
        alloc = Allocation(env, SUMMIT, n_nodes)
        pfs = GPFS(env, SUMMIT.pfs, n_nodes, SUMMIT.network.nic_bandwidth)
        dep = HVACDeployment(alloc, pfs)
        prefetch_time = 0.0
        if prefetch:
            pre = CachePrefetcher(
                dep, dataset.paths(), dataset.sizes, max_outstanding=8
            )
            t0 = env.now
            env.run(pre.start())
            prefetch_time = (env.now - t0) * factor
        config = TrainingConfig(
            model=RESNET50,
            dataset=dataset,
            n_nodes=n_nodes,
            procs_per_node=scale.procs_per_node,
            epochs=2,
            scale_factor=factor,
            sim_batch_size=scale.sim_batch_size,
        )
        res = TrainingJob(env, config, dep.client, "HVAC(1x1)").run()
        dep.teardown()
        return res.epoch_times[0], res.epoch_times[1], prefetch_time

    cold_e1, warm, _ = training(prefetch=False)
    pre_e1, pre_warm, pre_time = training(prefetch=True)
    return {
        "cold epoch-1": cold_e1,
        "steady-state epoch": warm,
        "epoch-1 after prefetch": pre_e1,
        "prefetch pass itself": pre_time,
    }


@pytest.mark.benchmark(group="ablation")
def test_ablation_prefetch(benchmark, capsys):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["phase", "time (s)"],
            [[k, v] for k, v in rows.items()],
            title="Ablation: pre-populating the cache vs the epoch-1 penalty",
        ))

    # Prefetch converts epoch-1 into (nearly) a steady-state epoch...
    assert rows["epoch-1 after prefetch"] < rows["cold epoch-1"]
    assert rows["epoch-1 after prefetch"] == pytest.approx(
        rows["steady-state epoch"], rel=0.25
    )
    # ...at the cost of a prefetch pass that is itself PFS-bound work.
    assert rows["prefetch pass itself"] > 0
