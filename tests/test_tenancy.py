"""Multi-tenant fleet: namespaces, quotas, admission, cache arbitration.

The tenancy subsystem's contract, pinned at four layers:

1. **identity** — :func:`tenant_of_path` is a pure parse of the
   ``/pfs/t<j>/`` namespace prefix, and :class:`TenantSpec` rejects
   malformed workloads at construction;
2. **fleet state split** — per-job client state is keyed by
   ``(node, tenant)`` while the :class:`QuotaLedger` and per-cache
   arbiters are fleet-wide, and each arbiter mode produces its
   documented residency shape under a hot-storm (dedicated slabs cap
   the aggressor, shared LRU sacrifices the victim, weighted-fair
   protects the under-watermark tenant);
3. **admission** — the controller walks admit -> queue -> degrade as
   the byte budget saturates, rejects only when ``degrade_ok`` is off,
   and promotes queued jobs on release;
4. **determinism** — seeded arrivals and the full isolation experiment
   replay bit-for-bit: same seed, same event fingerprint, same
   per-tenant SLO windows.
"""

import math

import pytest

from repro.core import client_key_order
from repro.experiments.resilience import _build, _fault_spec
from repro.experiments.tenancy import TENANCY_SPEC_OVERRIDES, tenancy_isolation
from repro.simcore import Environment, EventTrace
from repro.tenancy import (
    AdmissionController,
    QuotaLedger,
    TenantFleet,
    TenantSpec,
    job_plan,
    run_jobs,
    sample_jobs,
    tenant_of_path,
)


class TestTenantOfPath:
    def test_parses_namespace_prefix(self):
        assert tenant_of_path("/pfs/t0/f0001") == 0
        assert tenant_of_path("/pfs/t12/ds/part/f") == 12

    def test_non_tenant_paths_are_none(self):
        assert tenant_of_path("/pfs/fuzz/f0001") is None
        assert tenant_of_path("/pfs/ds/f0001") is None

    def test_prefix_without_trailing_slash_is_none(self):
        assert tenant_of_path("/pfs/t7") is None

    def test_non_digit_id_is_none(self):
        assert tenant_of_path("/pfs/tx/f") is None
        assert tenant_of_path("/pfs/t1x/f") is None


class TestTenantSpec:
    def test_defaults_and_namespace(self):
        spec = TenantSpec(tenant_id=3)
        assert spec.label == "t3"
        assert spec.namespace == "/pfs/t3"
        assert spec.dataset_bytes == spec.n_files * spec.file_size

    def test_files_live_under_the_namespace(self):
        spec = TenantSpec(tenant_id=2, n_files=3, file_size=1000)
        files = spec.files()
        assert len(files) == 3
        assert all(path.startswith("/pfs/t2/") for path, _ in files)
        assert all(tenant_of_path(path) == 2 for path, _ in files)
        assert all(size == 1000 for _, size in files)

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantSpec(tenant_id=-1)
        with pytest.raises(ValueError):
            TenantSpec(tenant_id=0, kind="batch")
        with pytest.raises(ValueError):
            TenantSpec(tenant_id=0, weight=0.0)
        with pytest.raises(ValueError):
            TenantSpec(tenant_id=0, quota_bytes=-1)
        with pytest.raises(ValueError):
            TenantSpec(tenant_id=0, hot_fraction=1.5)


class TestQuotaLedger:
    def _ledger(self, **kw):
        env = Environment()
        return QuotaLedger(env, [TenantSpec(tenant_id=0, **kw)])

    def test_charge_and_release_round_trip(self):
        ledger = self._ledger()
        ledger.charge(0, 5_000)
        ledger.charge(0, 2_000)
        assert ledger.used_bytes(0) == 7_000
        assert ledger.used_files(0) == 2
        ledger.release(0, 5_000)
        assert ledger.used_bytes(0) == 2_000
        assert ledger.used_files(0) == 1

    def test_byte_quota_boundary(self):
        ledger = self._ledger(quota_bytes=10_000)
        ledger.charge(0, 8_000)
        assert not ledger.would_exceed(0, 2_000)
        assert ledger.would_exceed(0, 2_001)

    def test_file_quota(self):
        ledger = self._ledger(quota_files=1)
        assert not ledger.would_exceed(0, 1)
        ledger.charge(0, 1)
        assert ledger.would_exceed(0, 1)

    def test_unknown_tenant_is_a_no_op(self):
        ledger = self._ledger()
        assert not ledger.knows(9)
        assert not ledger.would_exceed(9, 10**9)
        ledger.charge(9, 1_000)
        ledger.release(9, 1_000)
        ledger.refuse(9)
        assert ledger.used_bytes(9) == 0
        assert ledger.refusals(9) == 0

    def test_refusals_tally(self):
        ledger = self._ledger(quota_bytes=0)
        ledger.refuse(0)
        ledger.refuse(0)
        assert ledger.refusals(0) == 2


def _fleet(mode, tenants=(), n_nodes=2, seed=0, **spec_overrides):
    """A tiny 2-node fleet: 2 MB of cache per server, 4 MB fleet-wide."""
    overrides = dict(TENANCY_SPEC_OVERRIDES, cache_fraction=0.2, **spec_overrides)
    spec = _fault_spec(None, **overrides)
    env, dep, _pfs = _build(spec, n_nodes, seed)
    return env, dep, TenantFleet(dep, mode=mode, tenants=tenants)


def _sweep(env, fleet, spec, node=0, passes=1):
    """Read the tenant's whole dataset ``passes`` times from ``node``."""

    def reader():
        cli = fleet.client(node, spec.tenant_id)
        for _ in range(passes):
            for path, size in spec.files():
                yield from cli.read_file(path, size, node)

    env.run(env.process(reader(), name=f"tenancy.sweep.t{spec.tenant_id}"))


VICTIM = TenantSpec(tenant_id=0, kind="inference", n_files=4, file_size=100_000)
AGGRESSOR = TenantSpec(tenant_id=1, kind="training", n_files=60, file_size=100_000)


class TestFleetArbitration:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            _fleet("bogus")

    def test_state_split_per_job_clients_fleet_wide_ledger(self):
        env, dep, fleet = _fleet("shared", tenants=(VICTIM, AGGRESSOR))
        # per-job state: one client per (node, tenant), distinct from the
        # classic bare-node client, memoized per key
        t0 = fleet.client(0, 0)
        t1 = fleet.client(0, 1)
        assert t0 is not t1
        assert t0 is fleet.client(0, 0)
        assert t0 is not dep.client(0)
        assert fleet.tenant_client_keys() == [(0, 0), (0, 1)]
        # fleet-wide state: one ledger shared by every per-cache arbiter
        assert len(fleet.arbiters) == 2
        assert all(arb.ledger is fleet.ledger for arb in fleet.arbiters)

    def test_tenant_metric_scope(self):
        env, dep, fleet = _fleet("shared", tenants=(VICTIM,))
        _sweep(env, fleet, VICTIM)
        scoped = dep.metrics.counter("hvac.t0.client_opens").value
        assert scoped == VICTIM.n_files
        # the tenant scope shadows the fleet aggregate, not replaces it
        assert dep.metrics.counter("hvac.client_opens").value == VICTIM.n_files

    def test_shared_lru_sacrifices_the_victim(self):
        env, dep, fleet = _fleet("shared", tenants=(VICTIM, AGGRESSOR))
        _sweep(env, fleet, VICTIM, node=0)
        assert fleet.resident_bytes(0) == VICTIM.dataset_bytes
        _sweep(env, fleet, AGGRESSOR, node=1)
        # 6 MB of thrash through 4 MB of shared cache: the cold victim
        # entries are the global LRU head and get evicted
        assert fleet.resident_bytes(0) < VICTIM.dataset_bytes

    def test_dedicated_slabs_cap_the_aggressor(self):
        env, dep, fleet = _fleet("dedicated", tenants=(VICTIM, AGGRESSOR))
        _sweep(env, fleet, VICTIM, node=0)
        _sweep(env, fleet, AGGRESSOR, node=1)
        # equal weights: each tenant owns half of every cache (1 MB per
        # server, 2 MB fleet-wide), and evictions never cross slabs
        assert fleet.resident_bytes(0) == VICTIM.dataset_bytes
        assert fleet.resident_bytes(1) <= fleet.capacity_bytes // 2

    def test_weighted_fair_protects_the_under_watermark_tenant(self):
        env, dep, fleet = _fleet("weighted", tenants=(VICTIM, AGGRESSOR))
        _sweep(env, fleet, VICTIM, node=0)
        _sweep(env, fleet, AGGRESSOR, node=1)
        # the victim sits far under its watermark; every eviction the
        # aggressor forces is charged to the most-over-water tenant —
        # the aggressor itself
        assert fleet.resident_bytes(0) == VICTIM.dataset_bytes

    def test_quota_refuses_inserts_beyond_the_cap(self):
        capped = TenantSpec(
            tenant_id=0, kind="inference", n_files=4, file_size=100_000,
            quota_bytes=200_000,
        )
        env, dep, fleet = _fleet("shared", tenants=(capped,))
        _sweep(env, fleet, capped)
        assert fleet.resident_bytes(0) <= 200_000
        assert fleet.ledger.refusals(0) > 0

    def test_occupancy_table(self):
        env, dep, fleet = _fleet("dedicated", tenants=(VICTIM, AGGRESSOR))
        _sweep(env, fleet, VICTIM)
        occ = fleet.occupancy()
        assert list(occ) == [0, 1]
        assert occ[0] == VICTIM.dataset_bytes
        assert occ[1] == 0


class TestClientKeyOrder:
    def test_mixed_key_sorting(self):
        keys = [(1, 0), 3, (0, 2), 10, 2, (0, 1)]
        ordered = sorted(keys, key=client_key_order)
        assert ordered == [(0, 1), (0, 2), (1, 0), 2, 3, 10]


class TestAdmission:
    def _controller(self, **kw):
        return AdmissionController(Environment(), 1_000, **kw)

    def _spec(self, tid, demand=600):
        return TenantSpec(tenant_id=tid, quota_bytes=demand)

    def test_demand_prefers_quota_over_dataset(self):
        assert AdmissionController.demand_of(self._spec(0, 600)) == 600
        free = TenantSpec(tenant_id=1, n_files=3, file_size=100)
        assert AdmissionController.demand_of(free) == 300

    def test_admit_queue_degrade_progression(self):
        adm = self._controller(queue_limit=1, degrade_ok=True)
        assert adm.request(self._spec(0)).action == "admit"
        queued = adm.request(self._spec(1))
        assert queued.action == "queue"
        assert queued.event is not None
        assert adm.request(self._spec(2)).action == "degrade"
        assert adm.counts() == {"admit": 1, "queue": 1, "degrade": 1, "reject": 0}

    def test_reject_only_when_degrade_is_off(self):
        adm = self._controller(queue_limit=0, degrade_ok=False)
        assert adm.request(self._spec(0)).action == "admit"
        assert adm.request(self._spec(1)).action == "reject"

    def test_release_promotes_the_queue_head(self):
        adm = self._controller(queue_limit=1)
        adm.request(self._spec(0))
        queued = adm.request(self._spec(1))
        assert not queued.event.triggered
        adm.release(0)
        assert queued.event.triggered
        assert adm.reserved == 600

    def test_overcommit_widens_the_budget(self):
        adm = AdmissionController(Environment(), 1_000, overcommit=2.0)
        assert adm.request(self._spec(0, 900)).action == "admit"
        assert adm.request(self._spec(1, 900)).action == "admit"

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(Environment(), 0)
        with pytest.raises(ValueError):
            AdmissionController(Environment(), 1_000, overcommit=0.0)


class TestArrivals:
    def test_sample_jobs_is_a_pure_function_of_the_seed(self):
        a = sample_jobs(seed=11, n_jobs=6, n_nodes=3)
        b = sample_jobs(seed=11, n_jobs=6, n_nodes=3)
        assert a == b
        assert sample_jobs(seed=12, n_jobs=6, n_nodes=3) != a
        assert [j.spec.tenant_id for j in a] == list(range(6))
        times = [j.time for j in a]
        assert times == sorted(times)
        assert all(j.spec.kind in ("training", "inference") for j in a)

    def test_job_plan_training_sweeps_in_order(self):
        spec = TenantSpec(tenant_id=0, n_files=4, reads=4, epochs=2)
        plans = job_plan(spec, seed=0)
        assert plans == [spec.files(), spec.files()]

    def test_job_plan_inference_is_hot_skewed_and_seeded(self):
        spec = TenantSpec(
            tenant_id=0, kind="inference", n_files=8, reads=50,
            hot_fraction=0.8,
        )
        plans = job_plan(spec, seed=0)
        assert plans == job_plan(spec, seed=0)
        hot = spec.files()[0]
        hot_reads = sum(1 for pick in plans[0] if pick == hot)
        assert hot_reads > 25

    def test_run_jobs_replays_bit_for_bit(self):
        def one_run():
            jobs = sample_jobs(seed=4, n_jobs=5, n_nodes=2)
            env, dep, fleet = _fleet("weighted")
            adm = fleet.make_admission(overcommit=1.0, queue_limit=2)
            records = run_jobs(env, dep, fleet, jobs, adm, seed=4)
            return env.now, [(r.tenant_id, r.action, r.reads) for r in records]

        first, second = one_run(), one_run()
        assert first == second
        _, rows = first
        assert all(action in ("admit", "queue", "degrade") for _, action, _ in rows)
        assert all(reads > 0 for _, _, reads in rows)


class TestIsolationSmoke:
    SMOKE = dict(
        n_nodes=3,
        victim_files=12,
        aggressor_files=120,
        file_size=100_000,
        storm_passes=2,
        windows=8,
        n_jobs=6,
        cache_fraction=0.2,
        seed=0,
    )

    def test_weighted_dominates_shared_at_smoke_scale(self):
        result = tenancy_isolation(**self.SMOKE)
        assert set(result.outcomes) == {"shared", "dedicated", "weighted"}
        shared = result.outcomes["shared"]
        weighted = result.outcomes["weighted"]
        assert weighted.victim_p99 < shared.victim_p99
        assert weighted.victim_degraded_fraction < shared.victim_degraded_fraction
        assert result.dominates()
        assert not math.isnan(shared.victim_p50)
        assert result.admission_rows
        assert "Hot-storm isolation" in result.render()

    def test_same_seed_runs_are_identical(self):
        t1, t2 = EventTrace(), EventTrace()
        r1 = tenancy_isolation(**self.SMOKE, trace=t1)
        r2 = tenancy_isolation(**self.SMOKE, trace=t2)
        assert t1.fingerprint == t2.fingerprint
        assert r1.window_log() == r2.window_log()
        assert r1.rows() == r2.rows()

    def test_write_artifacts(self, tmp_path):
        result = tenancy_isolation(**self.SMOKE)
        paths = result.write_artifacts(str(tmp_path))
        assert set(paths) == {"report", "windows"}
        report = (tmp_path / "report.txt").read_text()
        assert "weighted-fair strictly dominates" in report
        windows = (tmp_path / "windows.log").read_text()
        assert windows == result.window_log()
        assert "== weighted ==" in windows
