"""Unit + property tests for datasets, loaders and model specs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    ALL_MODELS,
    COSMOFLOW,
    COSMOUNIVERSE,
    DEEPCAM_CLIMATE,
    IMAGENET21K,
    RESNET50,
    DatasetSpec,
    SyntheticDataset,
    make_epoch_plan,
)


class TestDatasetSpecs:
    def test_imagenet21k_matches_paper(self):
        assert IMAGENET21K.n_train_files == 11_797_632
        assert IMAGENET21K.n_valid_files == 561_052
        # ≈1.1 TB stated total wants ≈163 KB averages
        assert IMAGENET21K.total_train_bytes == pytest.approx(1.1e12, rel=0.8)

    def test_cosmouniverse_matches_paper(self):
        assert COSMOUNIVERSE.n_train_files == 524_288
        assert COSMOUNIVERSE.n_valid_files == 65_536
        assert COSMOUNIVERSE.total_train_bytes == pytest.approx(1.3e12, rel=0.05)

    def test_scaled_to(self):
        s = IMAGENET21K.scaled_to(1000)
        assert s.n_train_files == 1000
        assert s.mean_file_bytes == IMAGENET21K.mean_file_bytes
        assert s.n_valid_files >= 1

    def test_scaled_to_invalid(self):
        with pytest.raises(ValueError):
            IMAGENET21K.scaled_to(0)


class TestSyntheticDataset:
    def test_sizes_mean_close_to_spec(self):
        ds = SyntheticDataset(IMAGENET21K.scaled_to(50_000), seed=0)
        assert ds.sizes.mean() == pytest.approx(163_000, rel=0.05)

    def test_uniform_sizes_when_sigma_zero(self):
        spec = DatasetSpec("u", 100, 10, 5000.0, 0.0)
        ds = SyntheticDataset(spec)
        assert (ds.sizes == 5000).all()

    def test_paths_are_stable(self):
        a = SyntheticDataset(IMAGENET21K.scaled_to(10), seed=0)
        b = SyntheticDataset(IMAGENET21K.scaled_to(10), seed=0)
        assert a.paths() == b.paths()

    def test_path_index_bounds(self):
        ds = SyntheticDataset(IMAGENET21K.scaled_to(10))
        with pytest.raises(IndexError):
            ds.path(10)

    def test_scaled_factor(self):
        ds, factor = SyntheticDataset.scaled(IMAGENET21K, 1000)
        assert len(ds) == 1000
        assert factor == pytest.approx(11_797_632 / 1000)

    def test_epoch_order_is_permutation(self):
        ds = SyntheticDataset(IMAGENET21K.scaled_to(100))
        order = ds.epoch_order(0)
        assert sorted(order.tolist()) == list(range(100))

    def test_epoch_orders_differ_between_epochs(self):
        ds = SyntheticDataset(IMAGENET21K.scaled_to(200))
        assert not np.array_equal(ds.epoch_order(0), ds.epoch_order(1))

    def test_epoch_order_backend_independent(self):
        """Fig 14 invariant: the order depends only on seeds + epoch."""
        ds1 = SyntheticDataset(IMAGENET21K.scaled_to(100), seed=3)
        ds2 = SyntheticDataset(IMAGENET21K.scaled_to(100), seed=3)
        assert np.array_equal(ds1.epoch_order(5, seed=1), ds2.epoch_order(5, seed=1))

    def test_total_bytes(self):
        ds = SyntheticDataset(IMAGENET21K.scaled_to(100))
        assert ds.total_bytes == int(ds.sizes.sum())


class TestEpochPlan:
    def test_shards_cover_order_exactly(self):
        ds = SyntheticDataset(IMAGENET21K.scaled_to(103))
        plan = make_epoch_plan(ds, 0, n_ranks=4)
        combined = np.concatenate([s.indices for s in plan.shards])
        assert sorted(combined.tolist()) == sorted(plan.order.tolist())

    def test_drop_remainder_equalizes(self):
        ds = SyntheticDataset(IMAGENET21K.scaled_to(103))
        plan = make_epoch_plan(ds, 0, n_ranks=4, drop_remainder=True)
        lengths = {len(s) for s in plan.shards}
        assert lengths == {25}

    def test_batches(self):
        ds = SyntheticDataset(IMAGENET21K.scaled_to(10))
        plan = make_epoch_plan(ds, 0, n_ranks=1)
        batches = list(plan.shards[0].batches(4))
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_invalid_args(self):
        ds = SyntheticDataset(IMAGENET21K.scaled_to(10))
        with pytest.raises(ValueError):
            make_epoch_plan(ds, 0, n_ranks=0)
        plan = make_epoch_plan(ds, 0, n_ranks=1)
        with pytest.raises(ValueError):
            list(plan.shards[0].batches(0))

    @given(
        n_files=st.integers(min_value=1, max_value=500),
        n_ranks=st.integers(min_value=1, max_value=64),
        epoch=st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_sharding_partitions(self, n_files, n_ranks, epoch):
        """Shards are disjoint and cover the epoch order."""
        ds = SyntheticDataset(IMAGENET21K.scaled_to(n_files))
        plan = make_epoch_plan(ds, epoch, n_ranks=n_ranks)
        seen = np.concatenate([s.indices for s in plan.shards])
        assert len(seen) == n_files
        assert len(np.unique(seen)) == n_files


class TestModelSpecs:
    def test_resnet50_params_match_paper(self):
        assert RESNET50.n_parameters == 25_600_000

    def test_cosmoflow_params_match_paper(self):
        assert COSMOFLOW.n_parameters == 51_000

    def test_all_models_registry(self):
        assert set(ALL_MODELS) == {"resnet50", "tresnet_m", "cosmoflow", "deepcam"}

    def test_compute_time_scales_linearly(self):
        assert RESNET50.compute_time(80) == pytest.approx(
            2 * RESNET50.compute_time(40)
        )

    def test_compute_time_validation(self):
        with pytest.raises(ValueError):
            RESNET50.compute_time(0)

    def test_allreduce_zero_for_single_rank(self):
        assert RESNET50.allreduce_time(1, 12.5e9) == 0.0

    def test_allreduce_grows_with_ranks_then_saturates(self):
        t2 = RESNET50.allreduce_time(2, 12.5e9)
        t1024 = RESNET50.allreduce_time(1024, 12.5e9)
        assert t1024 > t2
        # bandwidth term converges to 2·bytes/bw
        limit = 2 * RESNET50.gradient_bytes / 12.5e9
        assert RESNET50.allreduce_time(10_000, 12.5e9) < limit * 1.5

    def test_allreduce_validation(self):
        with pytest.raises(ValueError):
            RESNET50.allreduce_time(0, 1e9)

    def test_gradient_bytes(self):
        assert RESNET50.gradient_bytes == 4 * 25_600_000

    def test_big_file_datasets_have_bigger_files(self):
        assert DEEPCAM_CLIMATE.mean_file_bytes > COSMOUNIVERSE.mean_file_bytes
        assert COSMOUNIVERSE.mean_file_bytes > IMAGENET21K.mean_file_bytes
