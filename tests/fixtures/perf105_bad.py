"""PERF105 fixture: O(n) container work per event.

``list.pop(0)`` shifts every remaining element, so draining the queue
this way is quadratic in its length."""


def drain(queue, out):
    while queue:
        out.append(queue.pop(0))
