"""HVAC core: the paper's contribution — client, server, cache, hashing."""

from .cache import CacheManager, EvictionPolicy, make_policy
from .client import HVACClient
from .deployment import HVACDeployment, client_key_order
from .prefetch import CachePrefetcher
from .hashing import (
    ConsistentHashPlacement,
    LocalityPlacement,
    ModuloPlacement,
    Placement,
    TopologyAwarePlacement,
    make_placement,
    placement_histogram,
)
from .server import HVACServer, ReadRequest

__all__ = [
    "CacheManager",
    "CachePrefetcher",
    "ConsistentHashPlacement",
    "EvictionPolicy",
    "HVACClient",
    "HVACDeployment",
    "client_key_order",
    "HVACServer",
    "LocalityPlacement",
    "make_placement",
    "make_policy",
    "ModuloPlacement",
    "Placement",
    "placement_histogram",
    "TopologyAwarePlacement",
    "ReadRequest",
]
