"""Tests for the I/O tracer (§III-F profiling) and the IOR workload."""

import pytest

from repro.baselines import GPFSSetup, XFSSetup
from repro.cluster import SUMMIT, TESTING, GB
from repro.dl import IMAGENET21K, SyntheticDataset
from repro.posix import TraceLog, TracingBackend
from repro.simcore import Environment
from repro.storage import GPFS
from repro.workloads import IORConfig, run_ior


def make_traced(env, n_nodes=2):
    pfs = GPFS(env, TESTING.pfs, n_nodes, TESTING.network.nic_bandwidth)
    return TracingBackend(env, pfs), pfs


class TestTracingBackend:
    def test_records_every_call(self):
        env = Environment()
        traced, _ = make_traced(env)

        def proc():
            for i in range(3):
                yield from traced.read_file(f"/d/f{i}", 1000, 0)

        env.run(env.process(proc()))
        log = traced.log
        assert len(log.ops("open")) == 3
        assert len(log.ops("read")) == 3
        assert len(log.ops("close")) == 3
        assert log.total_bytes == 3000

    def test_latencies_positive_and_ordered(self):
        env = Environment()
        traced, _ = make_traced(env)

        def proc():
            yield from traced.read_file("/d/f", 1000, 0)

        env.run(env.process(proc()))
        for record in traced.log.records:
            assert record.duration >= 0
        starts = [r.start for r in traced.log.records]
        assert starts == sorted(starts)

    def test_wrapped_backend_still_does_real_io(self):
        env = Environment()
        traced, pfs = make_traced(env)

        def proc():
            yield from traced.read_file("/d/f", 1000, 0)

        env.run(env.process(proc()))
        assert pfs.metrics.counter("gpfs.opens").value == 1
        assert env.now > 0

    def test_whole_file_pattern_detected(self):
        """The §III-F profile: open, one read, close per file."""
        env = Environment()
        traced, _ = make_traced(env)

        def dl_loader():
            for i in range(5):
                yield from traced.read_file(f"/d/f{i}", 16_000_000, 0)

        env.run(env.process(dl_loader()))
        assert traced.log.is_whole_file_single_read_pattern()

    def test_multi_read_pattern_not_whole_file(self):
        env = Environment()
        traced, _ = make_traced(env)

        def chunked_reader():
            h = yield from traced.open("/d/f", 1000, 0)
            yield from traced.read(h, 500)
            yield from traced.read(h, 500)
            yield from traced.close(h)

        env.run(env.process(chunked_reader()))
        assert not traced.log.is_whole_file_single_read_pattern()

    def test_summary_shape(self):
        env = Environment()
        traced, _ = make_traced(env)

        def proc():
            yield from traced.read_file("/d/f", 1000, 0)

        env.run(env.process(proc()))
        s = traced.log.summary()
        assert s["open"]["count"] == 1
        assert s["read"]["mean_latency"] > 0
        assert s["total_bytes"] == 1000

    def test_empty_log_summary(self):
        s = TraceLog().summary()
        assert s["open"]["count"] == 0
        assert s["total_bytes"] == 0

    def test_partial_read_offsets_track(self):
        env = Environment()
        traced, _ = make_traced(env)
        got = []

        def proc():
            h = yield from traced.open("/d/f", 100, 0)
            n1 = yield from traced.read(h, 60)
            n2 = yield from traced.read(h, 60)
            got.append((n1, n2))
            yield from traced.close(h)
            return h.closed

        closed = env.run(env.process(proc()))
        assert got == [(60, 40)]
        assert closed


class TestIOR:
    def dataset(self):
        return SyntheticDataset.scaled(IMAGENET21K, 64)[0]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IORConfig(n_nodes=0)
        with pytest.raises(ValueError):
            IORConfig(n_nodes=1, block_size=0)
        with pytest.raises(ValueError):
            IORConfig(n_nodes=1, file_size=10, block_size=20)

    def test_xfs_per_node_bandwidth_matches_rated(self):
        """IOR on local NVMe must deliver ≈5.5 GB/s per node."""
        env = Environment()
        h = XFSSetup().build(env, SUMMIT, 2, self.dataset())
        cfg = IORConfig(n_nodes=2, ranks_per_node=4,
                        file_size=256 * 1024**2, block_size=16 * 1024**2)
        res = run_ior(env, cfg, h.backend_for_node, h.label)
        assert res.per_node_bandwidth == pytest.approx(5.5e9, rel=0.1)

    def test_gpfs_single_node_limited_by_client_link(self):
        env = Environment()
        h = GPFSSetup().build(env, SUMMIT, 1, self.dataset())
        cfg = IORConfig(n_nodes=1, ranks_per_node=6,
                        file_size=256 * 1024**2, block_size=16 * 1024**2)
        res = run_ior(env, cfg, h.backend_for_node, h.label)
        # One node can't exceed its ~12.5 GB/s storage link.
        assert res.aggregate_bandwidth <= 12.5e9 * 1.05
        assert res.aggregate_bandwidth > 6e9

    def test_gpfs_scales_until_aggregate_limit(self):
        env = Environment()
        h = GPFSSetup().build(env, SUMMIT, 8, self.dataset())
        cfg = IORConfig(n_nodes=8, ranks_per_node=4,
                        file_size=64 * 1024**2, block_size=16 * 1024**2)
        res = run_ior(env, cfg, h.backend_for_node, h.label)
        assert res.aggregate_bandwidth > 4 * 12.5e9 * 0.5
        assert res.aggregate_bandwidth < 2.6e12

    def test_total_bytes_accounting(self):
        cfg = IORConfig(n_nodes=2, ranks_per_node=3, file_size=GB)
        assert cfg.total_bytes == 6 * GB
