"""Integration matrix: HVAC features composed pairwise.

Each feature works alone (their own test modules); these tests check
the combinations a production deployment would actually run.
"""

import dataclasses

import pytest

from repro.cluster import Allocation, TESTING
from repro.core import CachePrefetcher, HVACDeployment
from repro.simcore import AllOf, Environment
from repro.storage import GPFS, Lustre, LustreSpec


def build(n_nodes=4, rack_size=0, pfs_kind="gpfs", **hvac):
    env = Environment()
    spec = TESTING.with_hvac(**hvac)
    if rack_size:
        spec = dataclasses.replace(
            spec,
            network=dataclasses.replace(spec.network, rack_size=rack_size),
        )
    alloc = Allocation(env, spec, n_nodes=n_nodes)
    if pfs_kind == "gpfs":
        pfs = GPFS(env, spec.pfs, n_nodes, spec.network.nic_bandwidth)
    else:
        pfs = Lustre(
            env,
            LustreSpec(n_mds=2, mds_ops_per_sec=1000.0, n_oss=2,
                       osts_per_oss=2, ost_bandwidth=1e9,
                       data_latency=1e-4, client_overhead=0.0),
            n_nodes,
            spec.network.nic_bandwidth,
        )
    dep = HVACDeployment(alloc, pfs)
    return env, dep, pfs


def read_files(env, dep, files, nodes):
    def reader(node):
        cli = dep.client(node)
        for path, size in files:
            yield from cli.read_file(path, size, node)

    procs = [env.process(reader(n)) for n in nodes]

    def wait():
        yield AllOf(env, procs)

    env.run(env.process(wait()))


SMALL = [(f"/d/s{i}", 20_000) for i in range(24)]
BIG = [(f"/d/b{i}", 2_500_000) for i in range(4)]
STRIPE = dict(stripe_large_files=True, stripe_threshold=1_000_000,
              stripe_segment=500_000)


class TestStripingCombos:
    def test_striping_plus_replication(self):
        """Segments are replicated like whole files; a failure falls
        over segment-by-segment."""
        env, dep, _ = build(replication_factor=2, **STRIPE)
        read_files(env, dep, BIG, [0, 1, 2, 3])
        dep.fail_node(1)
        before = dep.metrics.counter("hvac.client_pfs_fallback").value
        read_files(env, dep, BIG, [0])
        assert dep.metrics.counter("hvac.client_pfs_fallback").value == before

    def test_striping_plus_eviction_pressure(self):
        """Segment entries evict independently under pressure."""
        import dataclasses as dc

        env = Environment()
        spec = TESTING.with_hvac(**STRIPE)
        # Shrink NVMe so the striped set overflows per-server budgets.
        spec = dc.replace(
            spec,
            node=dc.replace(
                spec.node,
                nvme=dc.replace(spec.node.nvme, capacity_bytes=2_000_000),
            ),
        )
        alloc = Allocation(env, spec, n_nodes=2)
        pfs = GPFS(env, spec.pfs, 2, spec.network.nic_bandwidth)
        dep = HVACDeployment(alloc, pfs)
        read_files(env, dep, BIG, [0])
        assert dep.total_cached_bytes <= 2 * 2_000_000
        read_files(env, dep, BIG, [0])  # still serviceable

    def test_striping_plus_prefetch_whole_files(self):
        """Prefetch (whole-file keyed) coexists with striped demand
        reads: demand segments fetch independently of prefetched files."""
        env, dep, _ = build(**STRIPE)
        pre = CachePrefetcher(dep, [p for p, _ in SMALL], [s for _, s in SMALL])
        env.run(pre.start())
        read_files(env, dep, SMALL + BIG, [0])
        # Small files all hit; big files went through the striped path.
        assert dep.metrics.counter("hvac.client_striped_reads").value == len(BIG)


class TestReplicationCombos:
    def test_replication_plus_consistent_hashing(self):
        env, dep, _ = build(replication_factor=2, hash_scheme="consistent")
        read_files(env, dep, SMALL, [0, 1, 2, 3])
        dep.fail_node(2)
        before = dep.metrics.counter("hvac.client_pfs_fallback").value
        read_files(env, dep, SMALL, [0])
        assert dep.metrics.counter("hvac.client_pfs_fallback").value == before

    def test_replication_plus_minio_eviction(self):
        env, dep, _ = build(replication_factor=2, eviction_policy="minio")
        read_files(env, dep, SMALL, [0, 1])
        read_files(env, dep, SMALL, [0, 1])
        assert dep.hit_rate() > 0.3

    def test_topology_plus_multiple_instances(self):
        env, dep, _ = build(
            rack_size=2,
            instances_per_node=2,
            replication_factor=2,
            topology_aware=True,
        )
        assert dep.n_servers == 8
        read_files(env, dep, SMALL, [0, 1, 2, 3])
        # Replicas of every file live in two different racks.
        for path, _ in SMALL:
            reps = dep.placement.replicas(path)
            racks = {dep.placement.rack_of(s) for s in reps}
            assert len(racks) == 2


class TestLustreCombos:
    def test_prefetch_over_lustre(self):
        env, dep, pfs = build(pfs_kind="lustre")
        pre = CachePrefetcher(dep, [p for p, _ in SMALL], [s for _, s in SMALL])
        env.run(pre.start())
        opens = pfs.metrics.counter("lustre.opens").value
        read_files(env, dep, SMALL, [0, 1])
        # Demand epoch added no Lustre traffic.
        assert pfs.metrics.counter("lustre.opens").value == opens

    def test_striping_over_lustre(self):
        env, dep, pfs = build(pfs_kind="lustre", **STRIPE)
        read_files(env, dep, BIG, [0])
        assert dep.metrics.counter("hvac.client_striped_reads").value == len(BIG)
        assert dep.total_cached_bytes == sum(s for _, s in BIG)


class TestKitchenSink:
    def test_everything_on_at_once(self):
        """Replication + topology + striping + LRU + 2 instances/node,
        through failure and recovery."""
        env, dep, _ = build(
            n_nodes=4,
            rack_size=2,
            instances_per_node=2,
            replication_factor=2,
            topology_aware=True,
            eviction_policy="lru",
            **STRIPE,
        )
        files = SMALL + BIG
        read_files(env, dep, files, [0, 1, 2, 3])
        dep.fail_node(3)
        read_files(env, dep, files, [0, 1, 2])
        dep.recover_node(3)
        read_files(env, dep, files, [0, 1, 2, 3])
        assert dep.hit_rate() > 0.3
        dep.teardown()
        assert dep.total_cached_bytes == 0
