"""Event-stream fingerprinting, the divergence bisector, and the
double-run determinism guarantee on a real experiment."""

from repro.check import (
    find_first_divergence,
    fingerprint_run,
    run_determinism,
)
from repro.check.divergence import _divergent_block
from repro.cli import main
from repro.dl import IMAGENET21K, ALL_MODELS
from repro.experiments import Scale, run_training
from repro.simcore import Environment, EventTrace


def simple_run(delays):
    """A trace runnable: one process yielding the given timeouts."""

    def run(trace):
        env = Environment()
        env.attach_trace(trace)

        def proc():
            for d in delays:
                yield env.timeout(d)

        env.process(proc(), name="p")
        env.run()

    return run


class TestEventTrace:
    def test_identical_runs_identical_fingerprints(self):
        a = fingerprint_run(simple_run([1.0, 2.0, 3.0]))
        b = fingerprint_run(simple_run([1.0, 2.0, 3.0]))
        assert a.count == b.count > 0
        assert a.fingerprint == b.fingerprint

    def test_different_runs_different_fingerprints(self):
        a = fingerprint_run(simple_run([1.0, 2.0, 3.0]))
        b = fingerprint_run(simple_run([1.0, 2.5, 3.0]))
        assert a.fingerprint != b.fingerprint

    def test_checkpoints_and_records(self):
        trace = EventTrace(checkpoint_every=2, keep_all=True)
        simple_run([1.0, 2.0, 3.0])(trace)
        assert len(trace.records) == trace.count
        assert len(trace.checkpoints) == trace.count // 2
        # records carry the fired order and the process label
        assert [r.index for r in trace.records] == list(range(trace.count))
        assert any(r.label == "Process:p" for r in trace.records)
        assert trace.records[0].time <= trace.records[-1].time

    def test_keep_window(self):
        trace = EventTrace(keep_window=(1, 3))
        simple_run([1.0, 2.0, 3.0])(trace)
        assert [r.index for r in trace.records] == [1, 2]

    def test_detach(self):
        env = Environment()
        trace = EventTrace()
        env.attach_trace(trace)
        assert env.trace is trace
        env.detach_trace()
        env.timeout(1.0)
        env.run()
        assert trace.count == 0


class TestBisector:
    @staticmethod
    def nondeterministic_run():
        """Alternates the middle delay on every other invocation —
        a reproducible stand-in for a stray unseeded RNG."""
        calls = {"n": 0}

        def run(trace):
            calls["n"] += 1
            middle = 2.0 if calls["n"] % 2 else 2.5
            simple_run([1.0, middle, 3.0])(trace)

        return run

    def test_deterministic_run_reports_none(self):
        assert find_first_divergence(simple_run([1.0, 2.0]), block=2) is None

    def test_bisects_to_first_divergent_event(self):
        report = find_first_divergence(self.nondeterministic_run(), block=2)
        assert report is not None
        assert report.fingerprint_a != report.fingerprint_b
        # the first divergent event is the reordered/retimed timeout
        assert report.first is not None and report.second is not None
        assert report.first.index == report.second.index == report.index
        assert report.first.time != report.second.time
        assert "first divergent event" in report.describe()

    def test_divergent_block_tail(self):
        # [1,2,3] fires Init + 3 Timeouts + the Process event (5 events);
        # [1,2,3,4] shares the first 4 exactly, so with block=2 both
        # checkpoints agree and the divergence sits in the tail window.
        a = EventTrace(checkpoint_every=2)
        b = EventTrace(checkpoint_every=2)
        simple_run([1.0, 2.0, 3.0])(a)
        simple_run([1.0, 2.0, 3.0, 4.0])(b)
        assert a.checkpoints == b.checkpoints[: len(a.checkpoints)]
        lo, hi = _divergent_block(a, b, 2)
        assert (lo, hi) == (4, b.count)


class TestExperimentDeterminism:
    def test_epochs_double_run_identical_fingerprints(self):
        """Two same-seed runs of a small epochs experiment must produce
        identical event streams (the repo's core reproducibility claim)."""
        scale = Scale(files_per_rank=4, sim_batch_size=2, repetitions=1,
                      procs_per_node=2)

        def run(trace):
            run_training(
                "hvac2", ALL_MODELS["resnet50"], IMAGENET21K, 2, scale,
                seed=7, trace=trace,
            )

        a = fingerprint_run(run)
        b = fingerprint_run(run)
        assert a.count == b.count > 100
        assert a.fingerprint == b.fingerprint

    def test_different_seeds_diverge(self):
        scale = Scale(files_per_rank=4, sim_batch_size=2, repetitions=1,
                      procs_per_node=2)

        def run_with(seed):
            trace = EventTrace()
            run_training(
                "hvac2", ALL_MODELS["resnet50"], IMAGENET21K, 2, scale,
                seed=seed, trace=trace,
            )
            return trace

        assert run_with(0).fingerprint != run_with(1).fingerprint

    def test_run_determinism_exit_code(self, capsys):
        assert run_determinism(seed=3, n_nodes=2, files_per_rank=2) == 0
        assert "determinism: OK" in capsys.readouterr().out


class TestCheckCLI:
    def test_lint_only_clean(self, capsys):
        assert main(["check", "--lint-only"]) == 0
        assert "simlint" in capsys.readouterr().out

    def test_determinism_only(self, capsys):
        assert main([
            "check", "--determinism-only",
            "--nodes", "2", "--files-per-rank", "2",
        ]) == 0
        assert "identical event streams" in capsys.readouterr().out

    def test_lint_flags_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nr = random.Random(1)\n")
        assert main(["check", "--lint-only", str(bad)]) == 1
        assert "SIM002" in capsys.readouterr().out
