"""Real-file HVAC client + deployment + ``open()`` interposer.

:class:`RuntimeDeployment` spins up N :class:`RuntimeServer` threads
over one "PFS" directory and hands out a :class:`RuntimeClient` that
redirects reads by the *same placement code the simulator uses*
(:class:`~repro.core.hashing.ModuloPlacement`) — one hash function, two
execution modes.

:func:`interposed_open` is the LD_PRELOAD stand-in for real Python
programs: inside the context manager, ``open(path, 'rb')`` for paths
under the dataset directory is transparently served from the HVAC
cache; everything else passes through to the original ``open``.
"""

from __future__ import annotations

import builtins
import contextlib
import io
import os
import shutil
import tempfile
import threading
from typing import Iterator, Optional

from ..core.hashing import ModuloPlacement, Placement
from .server import RuntimeServer

__all__ = ["RuntimeClient", "RuntimeDeployment", "interposed_open"]


class RuntimeClient:
    """Hash-redirecting client over a set of runtime servers."""

    def __init__(self, servers: list[RuntimeServer], placement: Placement, pfs_dir: str):
        if len(servers) != placement.n_servers:
            raise ValueError("placement size must match server count")
        self.servers = servers
        self.placement = placement
        self.pfs_dir = os.path.abspath(pfs_dir)

    def _rel(self, path: str) -> str:
        apath = os.path.abspath(path)
        if not apath.startswith(self.pfs_dir + os.sep):
            raise ValueError(f"{path} is not under the dataset dir {self.pfs_dir}")
        return os.path.relpath(apath, self.pfs_dir)

    def read_file(self, path: str) -> bytes:
        """The whole-file transaction via the homed server."""
        rel = self._rel(path)
        server = self.servers[self.placement.home(rel)]
        return server.submit(rel).result()

    def open(self, path: str) -> io.BytesIO:
        """An in-memory file object over the cached bytes."""
        return io.BytesIO(self.read_file(path))


class RuntimeDeployment:
    """N server threads + a placement + client, over real directories."""

    def __init__(
        self,
        pfs_dir: str,
        n_servers: int = 2,
        cache_root: Optional[str] = None,
        capacity_bytes_per_server: int = 1 << 30,
        pfs_read_delay: float = 0.0,
        eviction: str = "lru",
    ):
        if n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        self.pfs_dir = os.path.abspath(pfs_dir)
        if not os.path.isdir(self.pfs_dir):
            raise FileNotFoundError(self.pfs_dir)
        self._own_cache_root = cache_root is None
        self.cache_root = cache_root or tempfile.mkdtemp(prefix="hvac-cache-")
        self.servers = [
            RuntimeServer(
                server_id=i,
                pfs_dir=self.pfs_dir,
                cache_dir=os.path.join(self.cache_root, f"server{i}"),
                capacity_bytes=capacity_bytes_per_server,
                pfs_read_delay=pfs_read_delay,
                eviction=eviction,
            )
            for i in range(n_servers)
        ]
        self.placement = ModuloPlacement(n_servers)
        self.client = RuntimeClient(self.servers, self.placement, self.pfs_dir)

    # -- stats --------------------------------------------------------------
    @property
    def total_hits(self) -> int:
        return sum(s.stats.hits for s in self.servers)

    @property
    def total_misses(self) -> int:
        return sum(s.stats.misses for s in self.servers)

    @property
    def hit_rate(self) -> float:
        total = self.total_hits + self.total_misses
        return self.total_hits / total if total else 0.0

    def shutdown(self) -> None:
        """Stop all servers; the cache dies with the 'job' (§III-D)."""
        for server in self.servers:
            server.shutdown(purge=True)
        if self._own_cache_root:
            shutil.rmtree(self.cache_root, ignore_errors=True)

    def __enter__(self) -> "RuntimeDeployment":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


_interpose_lock = threading.Lock()


@contextlib.contextmanager
def interposed_open(deployment: RuntimeDeployment) -> Iterator[RuntimeClient]:
    """Monkeypatch ``builtins.open`` to redirect dataset reads to HVAC.

    The Python-level equivalent of ``LD_PRELOAD=libhvac_client.so`` with
    ``HVAC_DATASET_DIR=<pfs_dir>``: read-mode opens under the dataset
    directory return cached bytes; every other open is untouched.  Only
    one interposition may be active at a time (nested shims are the
    LD_PRELOAD fragility HVAC avoids).
    """
    client = deployment.client
    prefix = deployment.pfs_dir + os.sep
    if not _interpose_lock.acquire(blocking=False):
        raise RuntimeError("another interposition is already active")
    original_open = builtins.open

    def hvac_open(file, mode="r", *args, **kwargs):
        try:
            is_path = isinstance(file, (str, os.PathLike))
            apath = os.path.abspath(os.fspath(file)) if is_path else ""
        except TypeError:
            is_path = False
            apath = ""
        if is_path and apath.startswith(prefix) and set(mode) <= {"r", "b"}:
            data = client.read_file(apath)
            if "b" in mode:
                return io.BytesIO(data)
            return io.StringIO(data.decode(kwargs.get("encoding") or "utf-8"))
        return original_open(file, mode, *args, **kwargs)

    builtins.open = hvac_open
    try:
        yield client
    finally:
        builtins.open = original_open
        _interpose_lock.release()
