"""Deterministic random-number streams.

Every stochastic component (file-size draws, service-time jitter, shuffle
order, eviction victims) pulls from its own named child stream derived
from a single experiment seed, so that (a) runs are reproducible and
(b) changing the draw count in one component does not perturb another —
the property the paper relies on when claiming HVAC leaves the SGD
shuffle sequence untouched (Fig 14).
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

__all__ = ["RandomStreams", "stable_hash64"]


def stable_hash64(*parts: object) -> int:
    """A process-stable 64-bit hash of the given parts.

    ``hash()`` is salted per-interpreter for strings, so it cannot be
    used for cross-run-deterministic placement; this can.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x1f")
    return int.from_bytes(h.digest(), "little")


class RandomStreams:
    """A tree of named, independent :class:`numpy.random.Generator` streams."""

    __slots__ = ("seed", "_streams")

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """The (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            child_seed = stable_hash64(self.seed, name) & 0x7FFFFFFFFFFFFFFF
            # simlint: waive SIM002 -- the sanctioned construction site
            gen = np.random.default_rng(child_seed)
            self._streams[name] = gen
        return gen

    def child(self, name: str) -> "RandomStreams":
        """A derived stream tree (for per-node / per-process scoping)."""
        return RandomStreams(stable_hash64(self.seed, "child", name))

    def shuffled(self, name: str, n: int) -> np.ndarray:
        """A fresh random permutation of ``range(n)`` from stream ``name``."""
        return self.stream(name).permutation(n)

    def exponential(self, name: str, mean: float) -> float:
        return float(self.stream(name).exponential(mean))

    def uniform(self, name: str, low: float, high: float) -> float:
        return float(self.stream(name).uniform(low, high))

    def choice(self, name: str, seq: Sequence) -> object:
        return seq[int(self.stream(name).integers(len(seq)))]

    def lognormal_sizes(
        self, name: str, mean_bytes: float, sigma: float, n: int
    ) -> np.ndarray:
        """``n`` lognormal file sizes with the requested arithmetic mean.

        DL datasets (e.g. ImageNet) have long-tailed size distributions;
        lognormal with ``sigma≈0.6`` matches published ImageNet histograms
        closely enough for load-balance experiments (Fig 15).
        """
        if mean_bytes <= 0:
            raise ValueError("mean_bytes must be positive")
        mu = np.log(mean_bytes) - 0.5 * sigma * sigma
        sizes = self.stream(name).lognormal(mu, sigma, size=n)
        return np.maximum(sizes.astype(np.int64), 1)
