"""Shared-state auditor: per-rule fixtures, waivers, shape model,
registry round-trip, and the repo-audits-clean gate."""

import ast
import os
import re

import pytest

from repro.check import DECLARED_CELLS, run_cells, run_cells_freshness
from repro.check.cell_registry import (
    extract_note_sites,
    registry_freshness,
    shape_of_pattern,
    shapes_intersect,
)
from repro.check.cells import RACE_RULES, audit_files, audit_source, audit_tree

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")
FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
INTERNALS = os.path.join(REPO_ROOT, "docs", "INTERNALS.md")


def fixture(name):
    return os.path.join(FIXTURES, name)


def _src_files():
    out = []
    for dirpath, dirnames, filenames in os.walk(SRC_ROOT):
        dirnames.sort()
        for fn in sorted(filenames):
            if fn.endswith(".py"):
                path = os.path.join(dirpath, fn)
                with open(path, encoding="utf-8") as fh:
                    out.append((path, fh.read()))
    return out


# ---------------------------------------------------------------------------
# Per-rule fixtures: every rule fires on its bad file, stays silent on
# the good one.
# ---------------------------------------------------------------------------


class TestRuleFixtures:
    @pytest.mark.parametrize("rule", sorted(RACE_RULES))
    def test_bad_fixture_fires_exactly_its_rule(self, rule):
        audit = audit_tree([fixture(f"{rule.lower()}_bad.py")])
        assert audit.violations, rule
        assert {v.rule for v in audit.violations} == {rule}
        assert audit.stale_waivers == []

    @pytest.mark.parametrize("rule", sorted(RACE_RULES))
    def test_good_fixture_clean(self, rule):
        audit = audit_tree([fixture(f"{rule.lower()}_good.py")])
        assert audit.violations == []
        assert audit.stale_waivers == []
        assert audit.freshness == []

    def test_race201_names_the_roots(self):
        audit = audit_tree([fixture("race201_bad.py")])
        (v,) = audit.violations
        assert "Pool._worker" in v.message
        assert "2 concurrent process instances" in v.message

    def test_race204_names_both_families(self):
        audit = audit_tree([fixture("race204_bad.py")])
        messages = " ".join(v.message for v in audit.violations)
        assert "pool.<…>" in messages
        assert "no separating literal" in messages


# ---------------------------------------------------------------------------
# Waivers share the generalized simlint machinery: suppression works,
# stale waivers fail.
# ---------------------------------------------------------------------------

_UNNOTED = (
    "class Pool:\n"
    "    def __init__(self, env, jobs):\n"
    "        self.env = env\n"
    "        self.jobs = jobs\n"
    "        self.total = 0\n\n"
    "    def start(self):\n"
    "        for job in self.jobs:\n"
    "            self.env.process(self._worker(job))\n\n"
    "    def _worker(self, job):\n"
    "        yield self.env.timeout(1.0)\n"
    "        {line}\n"
)


class TestWaivers:
    def test_waiver_suppresses(self):
        src = _UNNOTED.format(
            line="self.total += job  # race: waive RACE201 -- commutes"
        )
        assert audit_source(src, "mod.py") == []

    def test_waiver_line_above(self):
        src = _UNNOTED.format(
            line="# race: waive RACE201 -- commutes\n        self.total += job"
        )
        assert audit_source(src, "mod.py") == []

    def test_unwaived_fires(self):
        src = _UNNOTED.format(line="self.total += job")
        (v,) = audit_source(src, "mod.py")
        assert v.rule == "RACE201"

    def test_stale_waiver_fails(self):
        src = _UNNOTED.format(
            line="return job  # race: waive RACE201 -- suppresses nothing"
        )
        audit = audit_files([("mod.py", src)])
        assert audit.violations == []
        (w,) = audit.stale_waivers
        assert w.codes == frozenset({"RACE201"})
        assert not audit.clean

    def test_simlint_waiver_syntax_is_not_a_race_waiver(self):
        src = _UNNOTED.format(
            line="self.total += job  # simlint: waive SIM004 -- wrong ns"
        )
        (v,) = audit_source(src, "mod.py")
        assert v.rule == "RACE201"


# ---------------------------------------------------------------------------
# The shape model behind RACE204.
# ---------------------------------------------------------------------------


class TestShapes:
    def test_pattern_round_trip(self):
        shape = shape_of_pattern("tenancy.quota.t<j>")
        assert shape.render() == "tenancy.quota.t<…>"
        assert not shape.has_adjacent_holes

    def test_adjacent_holes_flagged(self):
        assert shape_of_pattern("job.<t><n>").has_adjacent_holes

    def test_dot_separated_families_intersect(self):
        a = shape_of_pattern("pool.<a>")
        b = shape_of_pattern("pool.<a>.<b>")
        assert shapes_intersect(a, b)

    def test_distinct_literal_prefixes_do_not(self):
        a = shape_of_pattern("pool.slot.<a>")
        b = shape_of_pattern("pool.sub.<a>.<b>")
        assert not shapes_intersect(a, b)

    def test_identical_literals_intersect(self):
        a = shape_of_pattern("fuzz.autopilot.corpus")
        assert shapes_intersect(a, a)


# ---------------------------------------------------------------------------
# Registry round-trip: the declared inventory, the extracted in-tree
# note sites, and the INTERNALS cell table all agree.
# ---------------------------------------------------------------------------


class TestRegistryRoundTrip:
    def test_registry_matches_extracted_note_sites(self):
        files = _src_files()
        parsed = [(p, ast.parse(s, filename=p)) for p, s in files]
        assert registry_freshness(parsed) == []
        sites = [s for s in extract_note_sites(parsed) if not s.forwarded]
        noted = {shape.tokens for s in sites for shape in s.shapes}
        declared = {d.shape.tokens for d in DECLARED_CELLS}
        # every declared family is noted somewhere in the tree, and
        # every noted family matches a declaration (no drift either way)
        assert declared <= noted
        for s in sites:
            for shape in s.shapes:
                assert any(
                    shapes_intersect(d.shape, shape) for d in DECLARED_CELLS
                ), shape.render()

    def test_registry_matches_internals_cell_table(self):
        with open(INTERNALS, encoding="utf-8") as fh:
            text = fh.read()
        table = re.search(
            r"\| cell \| component \|.*?\n((?:\|.*\n)+)", text
        )
        assert table is not None
        patterns = {
            m.group(1)
            for m in re.finditer(r"^\| `([^`]+)` \|", table.group(1), re.M)
        }
        assert patterns == {d.pattern for d in DECLARED_CELLS}

    def test_every_declared_component_exists(self):
        for decl in DECLARED_CELLS:
            rel = decl.component.replace(".", os.sep) + ".py"
            assert os.path.exists(os.path.join(SRC_ROOT, rel)), decl.component


# ---------------------------------------------------------------------------
# The repo gate: the tree audits clean, and the gate actually has teeth.
# ---------------------------------------------------------------------------


class TestRepoIsClean:
    def test_tree_audits_clean(self):
        audit = audit_tree([SRC_ROOT])
        assert audit.violations == [], "\n".join(
            v.render() for v in audit.violations
        )
        assert audit.stale_waivers == []
        assert audit.freshness == []
        assert audit.clean
        assert audit.n_roots > 20  # the spawn-root inventory is populated
        assert audit.n_writes > 100

    def test_removing_one_note_flips_the_gate(self):
        """Deleting the staging worker's note_access must fail the
        audit: its queue-head writes lose their only coverage."""
        files = _src_files()
        target = os.path.join(SRC_ROOT, "prefetch", "scheduler.py")
        marker = "# staging-queue head advances"
        mutated = []
        found = False
        for path, source in files:
            if path == target:
                assert marker in source
                source = "\n".join(
                    line for line in source.splitlines()
                    if marker not in line
                ) + "\n"
                found = True
            mutated.append((path, source))
        assert found
        audit = audit_files(mutated)
        assert any(
            v.rule == "RACE201" and v.path == target
            for v in audit.violations
        ), "stripping the note should expose the worker's un-noted writes"
        assert not audit.clean


# ---------------------------------------------------------------------------
# CLI entry points.
# ---------------------------------------------------------------------------


class TestCLI:
    def test_run_cells_bad_fixture_nonzero(self, tmp_path, capsys):
        out = tmp_path / "cells.txt"
        rc = run_cells([fixture("race201_bad.py")], output=str(out))
        assert rc == 1
        assert "RACE201" in capsys.readouterr().out
        assert "RACE201" in out.read_text()

    def test_run_cells_good_fixture_clean(self, tmp_path, capsys):
        out = tmp_path / "cells.txt"
        rc = run_cells([fixture("race201_good.py")], output=str(out))
        assert rc == 0
        assert "clean" in capsys.readouterr().out
        assert "clean" in out.read_text()

    def test_run_cells_repo_clean(self):
        assert run_cells([SRC_ROOT], verbose=False) == 0

    def test_run_cells_freshness_repo_clean(self, capsys):
        assert run_cells_freshness([SRC_ROOT]) == 0
        assert "fresh" in capsys.readouterr().out

    def test_check_cli_cells_only_flag(self):
        from repro.cli import main

        assert main(["check", "--cells-only", fixture("race203_bad.py")]) == 1
        assert main(["check", "--cells-only", fixture("race203_good.py")]) == 0
