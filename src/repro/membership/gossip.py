"""Anti-entropy gossip between HVAC clients.

RPC piggybacking (see :mod:`repro.rpc.endpoint`) spreads suspicion
along whatever request edges the workload happens to exercise.  That
leaves two gaps: idle client pairs never exchange beliefs, and a dead
server — which by definition receives no requests — has no channel to
announce its recovery.  Each client therefore runs one low-rate
:class:`GossipAgent`:

* every ``gossip_interval`` (jittered ±50% from the client's own
  ``RandomStreams`` subtree) it picks one random peer client and makes
  a tiny ``gossip`` RPC whose only payload is the piggybacked digest in
  each direction — classic anti-entropy push-pull;
* it then checks the view's probe targets (``dead``/``recovering``
  servers) and pings the ones this node *owns* (fixed ownership
  ``sid % n_clients``: exactly one client probes each down server, with
  exponential backoff on repeated failures, so a long outage costs the
  fleet O(log outage) probes instead of a per-client re-probe storm).
  A ping to a still-crashed endpoint fails fast and cheap (connection
  refused, not a timeout); a ping that gets through carries the
  server's self-report back on the reply digest, which is how recovery
  propagates — first to the owner, then to everyone else through the
  anti-entropy rounds.
"""

from __future__ import annotations

from ..rpc import RPCError, RPCTimeout
from .view import MembershipView

__all__ = ["GossipAgent"]

#: service time for the trivial gossip/ping handlers
_HANDLER_COST = 2e-6


class GossipAgent:
    """Background anti-entropy + recovery-probe loop for one client."""

    def __init__(self, env, client, view: MembershipView, registry, spec, metrics=None):
        self.env = env
        self.client = client
        self.view = view
        #: deployment's client table (node_id -> HVACClient), shared and
        #: late-binding so peers created after us are still gossip targets
        self.registry = registry
        self.hvac = spec.hvac
        self.metrics = metrics if metrics is not None else client.metrics.scope(
            f"hvac.c{client.node_id}.gossip"
        )
        self.running = True
        self._tick = 0
        #: per-target recovery-ping backoff: sid -> (next allowed t, delay)
        self._ping_gate: dict[int, tuple[float, float]] = {}
        # The gossip RPC itself is an empty vessel: both digests ride
        # the piggyback hooks attach_membership() already wired.
        client.endpoint.register("gossip", self._handle_gossip)
        self.proc = env.process(self._loop(), name=f"gossip.c{client.node_id}")

    def stop(self) -> None:
        self.running = False

    def _handle_gossip(self, payload, src: int):
        yield self.env.timeout(_HANDLER_COST)
        return None

    # -- loop ---------------------------------------------------------------
    def _loop(self):
        rand = self.client.rand
        while True:
            jitter = rand.uniform("gossip.jitter", 0.5, 1.5)
            yield self.env.timeout(self.hvac.gossip_interval * jitter)
            if not self.running:
                return
            self._tick += 1
            yield from self._round(self._tick)

    def _round(self, tick: int):
        me = self.client.node_id
        peers = [nid for nid in self.registry if nid != me]
        if peers:
            peer = self.registry[self.client.rand.choice("gossip.peer", peers)]
            self.metrics.counter("rounds").incr()
            try:
                yield from self.client.endpoint.call(
                    peer.endpoint,
                    "gossip",
                    payload=None,
                    payload_bytes=0,
                    timeout=self.hvac.rpc_timeout,
                )
            except (RPCTimeout, RPCError):
                self.metrics.counter("round_failures").incr()
        # recovery probes: only for servers no read will ever touch
        targets = self.view.probe_targets()
        if not targets:
            return
        members = sorted(self.registry)
        n = len(members)
        mine = members.index(me)
        for sid in targets:
            if sid % n != mine:
                continue
            gate = self._ping_gate.get(sid)
            if gate is not None and self.env.now < gate[0]:
                continue
            yield from self._ping(sid)

    def _ping(self, sid: int):
        server = self.client.servers[sid]
        self.metrics.counter("pings").incr()
        try:
            yield from self.client.endpoint.call(
                server.endpoint,
                "ping",
                payload=None,
                payload_bytes=0,
                timeout=self.hvac.rpc_timeout,
            )
        except (RPCTimeout, RPCError):
            # still down: refresh the evidence timestamp and back off
            # (same probation schedule the failure detector uses, so a
            # long-dead server costs O(log outage) pings, not one per
            # gossip round)
            self.view.refresh(sid)
            self.metrics.counter("ping_failures").incr()
            base = max(self.hvac.probation_period, self.hvac.gossip_interval)
            gate = self._ping_gate.get(sid)
            delay = min(base * 8.0, gate[1] * 2.0) if gate else base
            self._ping_gate[sid] = (self.env.now + delay, delay)
        else:
            # the reply's piggybacked digest carried the self-report;
            # nothing to do here beyond counting the good news
            self.metrics.counter("ping_recoveries").incr()
            self._ping_gate.pop(sid, None)
