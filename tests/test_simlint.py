"""simlint: per-rule good/bad fixtures, waivers, and repo cleanliness."""

import os

import pytest

from repro.check import RULES, lint_paths, lint_source, scope_of

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src", "repro"
)


def codes(source, **kw):
    return [v.rule for v in lint_source(source, **kw)]


# ---------------------------------------------------------------------------
# Per-rule fixtures: every rule must fire on its bad snippet and stay
# silent on the corresponding good one.
# ---------------------------------------------------------------------------

BAD_FIXTURES = {
    "SIM001": "import time\n\ndef cost():\n    return time.time()\n",
    "SIM002": "import random\n\nrng = random.Random(3)\n",
    "SIM003": "def place(path, n):\n    return hash(path) % n\n",
    "SIM004": "seen = set()\n\ndef order():\n    return [x for x in seen]\n",
    "SIM005": (
        "def proc(env):\n"
        "    env.timeout(1.0)\n"  # created, never yielded
        "    yield env.timeout(2.0)\n"
    ),
    "SIM006": (
        "def poll(env):\n"
        "    if env.now == 5.0:\n"
        "        return True\n"
    ),
    "SIM007": "import time\n\ndef serve():\n    time.sleep(0.1)\n",
    "SIM008": "vals = {0.1, 0.2, 0.3}\n\ndef total():\n    return sum(vals)\n",
    "SIM009": (
        "index = {}\n\n"
        "def register(obj):\n"
        "    index[id(obj)] = obj\n"
    ),
}

GOOD_FIXTURES = {
    "SIM001": (
        "def cost(env):\n"
        "    return env.now\n"
    ),
    "SIM002": (
        "from repro.simcore import RandomStreams\n\n"
        "rng = RandomStreams(3).stream('evict')\n"
    ),
    "SIM003": (
        "from repro.simcore import stable_hash64\n\n"
        "def place(path, n):\n"
        "    return stable_hash64(path) % n\n"
    ),
    "SIM004": (
        "seen = set()\n\n"
        "def order():\n"
        "    return [x for x in sorted(seen)]\n"
    ),
    "SIM005": (
        "def proc(env):\n"
        "    yield env.timeout(1.0)\n"
        "    t = env.timeout(2.0)\n"  # assigned for later composition: fine
        "    yield t\n"
    ),
    "SIM006": (
        "def poll(env):\n"
        "    if env.now >= 5.0:\n"
        "        return True\n"
    ),
    "SIM007": (
        "def proc(env):\n"
        "    yield env.timeout(0.1)\n"
    ),
    "SIM008": (
        "vals = {0.1, 0.2, 0.3}\n\n"
        "def total():\n"
        "    return sum(sorted(vals))\n"
    ),
    "SIM009": (
        "index = {}\n\n"
        "def register(obj):\n"
        "    index[obj.name] = obj\n"
    ),
}


class TestRuleFixtures:
    @pytest.mark.parametrize("rule", sorted(RULES))
    def test_bad_fixture_fires(self, rule):
        assert rule in codes(BAD_FIXTURES[rule], scope="sim")

    @pytest.mark.parametrize("rule", sorted(RULES))
    def test_good_fixture_clean(self, rule):
        assert codes(GOOD_FIXTURES[rule], scope="sim") == []

    def test_violation_renders_location(self):
        (v,) = lint_source(BAD_FIXTURES["SIM003"], path="pkg/mod.py")
        assert v.rule == "SIM003"
        assert v.line == 2
        assert "pkg/mod.py:2:" in v.render()


class TestRuleDetails:
    def test_sim001_aliased_import(self):
        src = "from time import perf_counter\n\ndef f():\n    return perf_counter()\n"
        assert codes(src, scope="sim") == ["SIM001"]

    def test_sim002_dunder_import_smuggling(self):
        # the exact trick runtime/server.py used to ship
        src = "r = __import__('random').Random(7)\n"
        assert codes(src) == ["SIM002"]

    def test_sim002_numpy_alias_and_global_draws(self):
        src = "import numpy as np\n\ng = np.random.default_rng(0)\n"
        assert codes(src) == ["SIM002"]
        src = "import random\n\nrandom.shuffle([1, 2])\n"
        assert codes(src) == ["SIM002"]

    def test_sim002_applies_in_runtime_scope_too(self):
        src = "import random\n\nrng = random.Random(1)\n"
        assert codes(src, scope="runtime") == ["SIM002"]

    def test_sim004_set_literal_and_call(self):
        assert codes("for x in {1, 2, 3}:\n    pass\n") == ["SIM004"]
        assert codes("xs = list(set([3, 1]))\n") == ["SIM004"]

    def test_sim004_self_attribute_tracking(self):
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self._live: set[int] = set()\n"
            "    def order(self):\n"
            "        return [x for x in self._live]\n"
        )
        assert codes(src) == ["SIM004"]

    def test_sim004_dict_iteration_is_fine(self):
        assert codes("d = {}\nfor k in d:\n    pass\n") == []

    def test_sim005_only_in_generators(self):
        # outside a process generator the call is just a weird no-op,
        # not a suspended-forever process — stay quiet
        src = "def setup(env):\n    env.timeout(1.0)\n"
        assert codes(src) == []

    def test_sim005_spawning_processes_is_fine(self):
        src = (
            "def drain(self):\n"
            "    while True:\n"
            "        yield self.queue.get()\n"
            "        self.env.process(self.svc())\n"
        )
        assert codes(src) == []

    def test_sim006_both_sides(self):
        assert codes("ok = 0.0 != env.now\n") == ["SIM006"]

    def test_sim007_thread_join_vs_str_join(self):
        assert codes("def f(t):\n    yield 1\n    t.join()\n") == ["SIM007"]
        assert codes("def f(parts):\n    yield 1\n    s = ','.join(parts)\n") == []

    def test_sim008_qualified_reducers(self):
        src = "import math\n\nxs = set()\nt = math.fsum(xs)\n"
        assert codes(src) == ["SIM008"]
        src = "import numpy as np\n\nxs = {1.0, 2.0}\nt = np.sum(xs)\n"
        assert codes(src) == ["SIM008"]

    def test_sim008_set_literal_argument(self):
        assert codes("t = sum({0.5, 0.25})\n") == ["SIM008"]

    def test_sim008_ordered_reductions_are_fine(self):
        assert codes("xs = [0.1, 0.2]\nt = sum(xs)\n") == []
        assert codes("xs = {0.1, 0.2}\nt = sum(sorted(xs))\n") == []
        # a generator over a set is the SIM004 iteration hazard, and
        # only that — no double report
        assert codes("xs = {0.1}\nt = sum(x for x in xs)\n") == ["SIM004"]

    def test_sim009_subscript_read_and_write(self):
        assert codes("d = {}\nd[id(1)] = 2\n") == ["SIM009"]
        assert codes("d = {}\nx = d[id(1)]\n") == ["SIM009"]

    def test_sim009_dict_literal_and_comprehension(self):
        assert codes("a = object()\nd = {id(a): 1}\n") == ["SIM009"]
        assert codes("d = {id(o): o for o in [1, 2]}\n") == ["SIM009"]

    def test_sim009_id_in_set_membership_is_fine(self):
        # the engine's cycle guard: id() into a *set*, pure membership,
        # never iterated — address instability can't leak into order
        assert codes("s = set()\ns.add(id(1))\nok = id(2) in s\n") == []

    def test_wall_clock_rules_skip_runtime_scope(self):
        src = "import time\n\ndef f():\n    time.sleep(1)\n    return time.time()\n"
        assert codes(src, scope="sim") == ["SIM007", "SIM001"]  # source order
        assert codes(src, scope="runtime") == []


class TestWaivers:
    def test_same_line_waiver(self):
        src = "h = hash('x')  # simlint: waive SIM003 -- demo\n"
        assert codes(src) == []

    def test_line_above_waiver(self):
        src = "# simlint: waive SIM003 -- demo\nh = hash('x')\n"
        assert codes(src) == []

    def test_bare_waiver_covers_all_rules(self):
        src = "import random\n\nr = random.Random(hash('x'))  # simlint: waive\n"
        assert codes(src) == []

    def test_waiver_is_code_specific(self):
        src = "import random\n\nr = random.Random(hash('x'))  # simlint: waive SIM003\n"
        assert codes(src) == ["SIM002"]

    def test_non_comment_line_above_does_not_waive(self):
        src = "x = 1  # simlint: waive SIM003\nh = hash('x')\n"
        assert codes(src) == ["SIM003"]


class TestScope:
    def test_scope_classification(self):
        assert scope_of("src/repro/simcore/engine.py") == "sim"
        assert scope_of("src/repro/runtime/server.py") == "runtime"
        assert scope_of("src/repro/posix/interpose.py") == "runtime"

    def test_unknown_rule_code_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_paths([SRC_ROOT], rules=["SIM999"])


class TestRepoIsClean:
    def test_tree_lints_clean(self):
        """The determinism contract holds for the shipped tree: every
        SIM violation has been fixed or explicitly waived inline."""
        violations = lint_paths([SRC_ROOT])
        assert violations == [], "\n".join(v.render() for v in violations)
