"""I/O call tracing — the profiling HVAC was first built for (§III-F).

    "For the initial prototype, HVAC is used to profile the read calls
    from the DL frameworks like PyTorch and Horovod, to understand how
    the data loaders within the frameworks access the files."

:class:`TracingBackend` wraps any :class:`FileBackend` and records every
``open/read/close`` with timestamps, sizes, and latencies — a
Darshan-like per-process trace.  :meth:`TraceLog.summary` reproduces the
paper's profiling conclusion for a loader: whole-file single-read
transactions (one open, one read covering the file, one close), which is
the pattern that makes interception viable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from ..simcore import Environment
from ..storage.base import FileBackend, OpenFile

__all__ = ["TraceRecord", "TraceLog", "TracingBackend"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced POSIX call."""

    op: str  # "open" | "read" | "close"
    path: str
    start: float
    duration: float
    nbytes: int = 0


@dataclass
class TraceLog:
    """Accumulated trace of one backend."""

    records: list[TraceRecord] = field(default_factory=list)

    def add(self, record: TraceRecord) -> None:
        self.records.append(record)

    def ops(self, op: str) -> list[TraceRecord]:
        return [r for r in self.records if r.op == op]

    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.records if r.op == "read")

    def latencies(self, op: str) -> np.ndarray:
        return np.asarray([r.duration for r in self.ops(op)], dtype=float)

    def summary(self) -> dict:
        """Per-op counts, byte totals and latency stats."""
        out: dict = {"total_bytes": self.total_bytes}
        for op in ("open", "read", "close"):
            lats = self.latencies(op)
            out[op] = {
                "count": int(lats.size),
                "mean_latency": float(lats.mean()) if lats.size else 0.0,
                "p99_latency": float(np.percentile(lats, 99)) if lats.size else 0.0,
            }
        return out

    def is_whole_file_single_read_pattern(self) -> bool:
        """The §III-F finding: one open, ONE read per file, one close —
        the access shape that makes LD_PRELOAD interception sufficient."""
        opens = self.ops("open")
        reads = self.ops("read")
        closes = self.ops("close")
        if not opens or len(opens) != len(closes):
            return False
        reads_per_path: dict[str, int] = {}
        for r in reads:
            reads_per_path[r.path] = reads_per_path.get(r.path, 0) + 1
        opens_per_path: dict[str, int] = {}
        for r in opens:
            opens_per_path[r.path] = opens_per_path.get(r.path, 0) + 1
        return all(
            reads_per_path.get(path, 0) == count
            for path, count in opens_per_path.items()
        )


class TracingBackend(FileBackend):
    """Transparent tracing wrapper around any storage backend."""

    def __init__(self, env: Environment, inner: FileBackend, log: TraceLog | None = None):
        self.env = env
        self.inner = inner
        self.log = log or TraceLog()

    def open(self, path: str, size: int, client_node: int) -> Generator:
        t0 = self.env.now
        handle = yield from self.inner.open(path, size, client_node)
        self.log.add(TraceRecord("open", path, t0, self.env.now - t0))
        # Re-home the handle so read/close flow back through the tracer.
        return _TracedHandle(handle, self)

    def read(self, handle: "OpenFile", nbytes: int) -> Generator:
        inner_handle = handle.inner if isinstance(handle, _TracedHandle) else handle
        t0 = self.env.now
        got = yield from self.inner.read(inner_handle, nbytes)
        self.log.add(TraceRecord("read", inner_handle.path, t0, self.env.now - t0, got))
        if isinstance(handle, _TracedHandle):
            handle.offset = inner_handle.offset
        return got

    def close(self, handle: "OpenFile") -> Generator:
        inner_handle = handle.inner if isinstance(handle, _TracedHandle) else handle
        t0 = self.env.now
        yield from self.inner.close(inner_handle)
        self.log.add(TraceRecord("close", inner_handle.path, t0, self.env.now - t0))
        if isinstance(handle, _TracedHandle):
            handle.closed = True


class _TracedHandle(OpenFile):
    """An OpenFile that routes operations back through the tracer."""

    def __init__(self, inner: OpenFile, tracer: TracingBackend):
        super().__init__(
            path=inner.path,
            size=inner.size,
            backend=tracer,
            client_node=inner.client_node,
            offset=inner.offset,
        )
        self.inner = inner
