"""PERF101 fixture: a churned class without ``__slots__``.

With no kernel module in the file set every function counts as hot, so
the instantiation in ``on_event`` is a per-event allocation — and a
slotless class pays an extra ``__dict__`` per instance.
"""


class Token:
    def __init__(self, seq):
        self.seq = seq


def on_event(seq):
    return Token(seq)
