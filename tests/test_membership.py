"""Membership & repair subsystem: the SWIM view lattice, fault-aware
remapping, gossip spread, peer-to-peer repair, recovery determinism,
correlated fault schedules, and per-segment retry budgets."""

import pytest

from repro.cluster import Allocation, RateLimiter, TESTING
from repro.core import HVACDeployment
from repro.core.hashing import ModuloPlacement
from repro.experiments import membership_comparison
from repro.experiments.membership import _collect_transitions
from repro.faults import FaultSchedule, crash
from repro.membership import (
    ALIVE,
    DEAD,
    RECOVERING,
    SUSPECTED,
    MembershipView,
    RemappedPlacement,
)
from repro.simcore import AllOf, Environment, EventTrace
from repro.storage import GPFS

#: fast-detection HVAC overrides shared by every deployment test here
FAST = dict(
    rpc_timeout=0.02,
    rpc_max_retries=4,
    rpc_backoff_base=1e-4,
    rpc_backoff_cap=1e-3,
    suspect_after=2,
    probation_period=0.02,
    replication_factor=2,
    membership_enabled=True,
    gossip_interval=0.005,
    suspect_to_dead=0.03,
)

FILES = [(f"/d/f{i}", 25_000) for i in range(16)]


def build(n_nodes=4, seed=0, trace=None, **hvac):
    env = Environment()
    if trace is not None:
        env.attach_trace(trace)
    spec = TESTING.with_hvac(**{**FAST, **hvac})
    alloc = Allocation(env, spec, n_nodes=n_nodes)
    pfs = GPFS(env, spec.pfs, n_nodes, spec.network.nic_bandwidth)
    dep = HVACDeployment(alloc, pfs, seed=seed)
    return env, dep, pfs


def run_epoch(env, dep, node_ids, files=FILES):
    def reader(node):
        cli = dep.client(node)
        for path, size in files:
            yield from cli.read_file(path, size, node)

    procs = [env.process(reader(n)) for n in node_ids]

    def wait():
        yield AllOf(env, procs)

    env.run(env.process(wait()))


def advance(env, dt):
    env.run(until=env.timeout(dt))


def drain_repair(env, dep, max_seconds=5.0):
    deadline = env.now + max_seconds
    while dep.repair is not None and dep.repair.in_flight > 0:
        if env.now >= deadline:
            raise AssertionError("repair never drained")
        advance(env, 1e-3)


# ---------------------------------------------------------------------------
class TestMembershipView:
    def view(self, n=4, probation=0.02, dead_after=0.05):
        env = Environment()
        return env, MembershipView(
            env, n, owner="t", probation=probation, dead_after=dead_after
        )

    def test_higher_incarnation_always_wins(self):
        env, v = self.view()
        assert v.merge(((1, 0, DEAD, 0.0),)) == 1
        assert v.state_of(1) == DEAD
        # the server's refutation at a later incarnation overrides death
        assert v.merge(((1, 1, ALIVE, 0.0),)) == 1
        assert v.state_of(1) == ALIVE

    def test_equal_incarnation_worse_state_wins(self):
        env, v = self.view()
        assert v.merge(((2, 0, SUSPECTED, 0.0),)) == 1
        # second-hand "it's fine" at the same incarnation cannot clear it
        assert v.merge(((2, 0, ALIVE, 0.0),)) == 0
        assert v.state_of(2) == SUSPECTED

    def test_equal_entry_only_refreshes_stamp(self):
        env, v = self.view()
        v.merge(((2, 0, SUSPECTED, 0.0),))
        logged = len(v.transitions)
        v.merge(((2, 0, SUSPECTED, 7.5),))
        assert len(v.transitions) == logged  # no new transition
        assert v.entry(2)[2] == 7.5  # but probation re-armed

    def test_suspected_escalates_to_dead_after_timeout(self):
        env, v = self.view(dead_after=0.05)
        v.on_suspect(3)
        assert v.state_of(3) == SUSPECTED
        advance(env, 0.06)
        assert v.state_of(3) == DEAD
        assert v.transitions[-1][5] == "escalation"

    def test_repeated_suspicion_does_not_reset_escalation_clock(self):
        env, v = self.view(dead_after=0.05)
        v.on_suspect(3)
        advance(env, 0.03)
        v.on_suspect(3)  # fresh strikes re-arm probation, not the onset
        advance(env, 0.03)
        assert v.state_of(3) == DEAD

    def test_routable_honours_probation(self):
        env, v = self.view(probation=0.02, dead_after=10.0)
        v.on_suspect(1)
        assert not v.routable(1)
        advance(env, 0.021)
        assert v.routable(1)  # the next read doubles as the re-probe
        assert not v.routable(1) or v.state_of(1) == SUSPECTED

    def test_dead_not_routable_recovering_not_placeable(self):
        env, v = self.view()
        v.merge(((0, 1, DEAD, 0.0),))
        v.merge(((1, 1, RECOVERING, 0.0),))
        assert not v.routable(0)
        assert v.routable(1)  # recovering answers pings/announcements
        assert not v.placeable(0)
        assert not v.placeable(1)
        assert v.probe_targets() == [0, 1]

    def test_self_report_equal_state_is_stamp_only(self):
        env, v = self.view()
        v.self_report(0, 0, ALIVE)
        assert v.transitions == []

    def test_digest_ships_only_non_boot_entries(self):
        env, v = self.view()
        v.on_suspect(2)
        digest = v.digest()
        assert [entry[0] for entry in digest] == [2]
        assert MembershipView.digest_bytes(digest) == 8 + 24
        # a fresh view adopts the digest wholesale
        env2, v2 = self.view()
        assert v2.merge(digest) == 1
        assert v2.state_of(2) == SUSPECTED


# ---------------------------------------------------------------------------
class TestRemappedPlacement:
    def make(self, n=4, rf=2):
        env = Environment()
        view = MembershipView(env, n, probation=0.02, dead_after=10.0)
        base = ModuloPlacement(n, rf)
        return env, view, base, RemappedPlacement(base, view)

    def test_identity_while_everyone_is_alive(self):
        _, _, base, remapped = self.make()
        for i in range(10):
            assert remapped.replicas(f"/f{i}") == base.replicas(f"/f{i}")

    def test_dead_server_ranges_move_to_ring_successors(self):
        _, view, base, remapped = self.make()
        view.merge(((1, 1, DEAD, 0.0),))
        for i in range(20):
            repl = remapped.replicas(f"/f{i}")
            assert 1 not in repl
            assert len(repl) == len(base.replicas(f"/f{i}"))
            assert len(set(repl)) == len(repl)

    def test_unmaps_on_recovery(self):
        _, view, base, remapped = self.make()
        view.merge(((1, 1, DEAD, 0.0),))
        assert any(
            remapped.replicas(f"/f{i}") != base.replicas(f"/f{i}")
            for i in range(20)
        )
        view.merge(((1, 2, ALIVE, 0.0),))
        for i in range(20):
            assert remapped.replicas(f"/f{i}") == base.replicas(f"/f{i}")

    def test_remap_is_deterministic(self):
        _, view, _, remapped = self.make(n=6, rf=2)
        view.merge(((2, 1, DEAD, 0.0), (3, 1, DEAD, 0.0)))
        first = [remapped.replicas(f"/f{i}") for i in range(30)]
        second = [remapped.replicas(f"/f{i}") for i in range(30)]
        assert first == second

    def test_all_dead_returns_base_set(self):
        _, view, base, remapped = self.make(n=3, rf=2)
        view.merge(tuple((sid, 1, DEAD, 0.0) for sid in range(3)))
        # degenerate cluster: fall back to the base set so the read path
        # still has someone to strike (and then degrade to PFS)
        assert remapped.replicas("/f0") == base.replicas("/f0")

    def test_delegates_extensions_to_base(self):
        _, _, base, remapped = self.make()
        assert remapped.home("/f0") == remapped.replicas("/f0")[0]
        assert remapped.base is base


# ---------------------------------------------------------------------------
class TestGossipSpread:
    def test_suspicion_reaches_idle_clients(self):
        env, dep, _ = build(n_nodes=4)
        clients = [dep.client(n) for n in range(4)]
        run_epoch(env, dep, range(4))  # warm + everyone joins gossip
        dep.inject(FaultSchedule([crash(0.0, 1)]))
        run_epoch(env, dep, [0])  # only client 0 observes strikes
        advance(env, 10 * dep.spec.hvac.gossip_interval)
        # clients 2/3 never contacted server 1, yet believe it down
        for cli in clients[2:]:
            assert cli.view.state_of(1) in (SUSPECTED, DEAD)
            assert any(
                why in ("gossip", "piggyback")
                for *_, why in cli.view.transitions
            )

    def test_refutation_spreads_after_recovery(self):
        env, dep, _ = build(n_nodes=4)
        clients = [dep.client(n) for n in range(4)]
        run_epoch(env, dep, range(4))
        dep.inject(FaultSchedule([crash(0.0, 1)]))
        run_epoch(env, dep, range(4))
        dep.recover_node(1)
        drain_repair(env, dep)
        run_epoch(env, dep, range(4))
        advance(env, 10 * dep.spec.hvac.gossip_interval)
        for cli in clients:
            assert cli.view.state_of(1) == ALIVE
            assert cli.view.incarnation(1) >= 1


# ---------------------------------------------------------------------------
class TestRateLimiter:
    def test_paces_to_configured_rate(self):
        env = Environment()
        limiter = RateLimiter(env, rate=1000.0)
        done = []

        def flow():
            yield from limiter.throttle(500)
            done.append(env.now)
            yield from limiter.throttle(500)
            done.append(env.now)

        env.run(env.process(flow()))
        assert done == [pytest.approx(0.5), pytest.approx(1.0)]

    def test_zero_rate_is_unthrottled(self):
        env = Environment()
        limiter = RateLimiter(env, rate=0.0)

        def flow():
            yield from limiter.throttle(10**9)
            return env.now

        assert env.run(env.process(flow())) == 0.0


class TestRepair:
    def crash_and_recover(self, bandwidth=0.0):
        env, dep, _ = build(n_nodes=4, repair_bandwidth=bandwidth)
        dep.repair.attach_manifest(FILES)
        run_epoch(env, dep, range(4))  # warm every cache
        dep.inject(FaultSchedule([crash(0.0, 1)]))
        run_epoch(env, dep, range(4))
        dep.recover_node(1)
        drain_repair(env, dep)
        return env, dep

    def test_repair_restores_the_lost_shard_from_peers(self):
        env, dep = self.crash_and_recover()
        (report,) = dep.repair.reports
        assert not report.aborted
        assert report.bytes_from_peers > 0
        server = dep.servers[1]
        assert server.member_state == "alive"
        assert server.incarnation >= 2  # recover bump + repair bump
        restored = [
            path
            for path, _ in FILES
            if 1 in dep.placement.replicas(path) and server.cache.contains(path)
        ]
        assert restored, "repair re-warmed none of the shard"

    def test_throttle_bounds_repair_rate(self):
        fast_env, fast_dep = self.crash_and_recover(bandwidth=0.0)
        slow_env, slow_dep = self.crash_and_recover(bandwidth=1e6)
        (fast,) = fast_dep.repair.reports
        (slow,) = slow_dep.repair.reports
        assert slow.total_bytes == fast.total_bytes
        assert slow.seconds >= slow.total_bytes / 1e6 - 1e-9
        assert slow.seconds > fast.seconds

    def test_second_crash_aborts_stale_repair(self):
        env, dep, _ = build(n_nodes=4, repair_bandwidth=1e5)  # glacial
        dep.repair.attach_manifest(FILES)
        run_epoch(env, dep, range(4))
        dep.inject(FaultSchedule([crash(0.0, 1)]))
        run_epoch(env, dep, range(4))
        dep.recover_node(1)
        advance(env, 0.01)  # mid-repair...
        dep.inject(FaultSchedule([crash(0.0, 1)]))  # ...crash again
        advance(env, 0.01)
        dep.recover_node(1)
        drain_repair(env, dep, max_seconds=30.0)
        assert any(r.aborted for r in dep.repair.reports)
        assert dep.servers[1].member_state == "alive"


# ---------------------------------------------------------------------------
class TestRecoveryDeterminism:
    def scenario(self, seed=0):
        trace = EventTrace()
        env, dep, _ = build(n_nodes=4, seed=seed, trace=trace)
        dep.repair.attach_manifest(FILES)
        run_epoch(env, dep, range(4))
        dep.inject(FaultSchedule([crash(0.0, 1)]))
        run_epoch(env, dep, range(4))
        dep.recover_node(1)
        drain_repair(env, dep)
        run_epoch(env, dep, range(4))
        dep.teardown()
        return trace.fingerprint, _collect_transitions(dep)

    def test_same_seed_same_events_and_transitions(self):
        fp1, log1 = self.scenario(seed=7)
        fp2, log2 = self.scenario(seed=7)
        assert fp1 == fp2
        assert log1 == log2
        assert log1, "scenario produced no membership transitions"

    def test_transition_log_is_time_ordered(self):
        _, log = self.scenario()
        times = [row[0] for row in log]
        assert times == sorted(times)


# ---------------------------------------------------------------------------
class TestMembershipExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return membership_comparison(
            n_nodes=4,
            n_files=12,
            victims=(1, 2),
            outage_epochs=1,
            windows=6,
            repair_bandwidths=(0.0,),
        )

    def test_full_stack_dominates_detector_only(self, result):
        det = result.outcomes["detector"]
        full = result.outcomes["gossip+remap+repair"]
        assert result.dominates()
        assert full.dup_probes < det.dup_probes
        assert full.degraded_fraction < det.degraded_fraction
        assert full.recovery_penalty < det.recovery_penalty

    def test_render_and_artifacts(self, result, tmp_path):
        text = result.render()
        assert "strictly dominates detector-only" in text
        paths = result.write_artifacts(str(tmp_path))
        assert (tmp_path / "report.txt").exists()
        assert (tmp_path / "transitions.log").read_text().count("->") > 0
        assert sorted(paths) == ["report", "transitions"]

    def test_detection_latency_measured_in_every_mode(self, result):
        for outcome in result.outcomes.values():
            assert outcome.detect_latency == outcome.detect_latency  # not NaN
            assert outcome.detect_latency >= 0.0


# ---------------------------------------------------------------------------
class TestCorrelatedFaults:
    def test_same_seed_same_schedule(self):
        kw = dict(
            n_nodes=8, seed=5, horizon=1.0, rack_size=4,
            rack_crash_rate=2.0, switch_flaky_rate=1.0,
            burst_spread=0.01, mean_outage=0.05,
        )
        assert (
            FaultSchedule.random(**kw).describe()
            == FaultSchedule.random(**kw).describe()
        )

    def test_rack_burst_covers_the_whole_rack(self):
        sched = FaultSchedule.random(
            n_nodes=8, seed=3, horizon=1.0, rack_size=4,
            rack_crash_rate=3.0, burst_spread=0.01, mean_outage=0.05,
        )
        crashes = [e for e in sched if e.kind == "crash"]
        assert crashes
        # events of one burst share their outage duration
        bursts = {}
        for e in crashes:
            bursts.setdefault(e.duration, []).append(e)
        for members in bursts.values():
            nodes = sorted(e.node for e in members)
            racks = {n // 4 for n in nodes}
            assert len(racks) == 1  # one rack per burst
            assert nodes == list(
                range(min(nodes), min(nodes) + 4)
            )  # ...and all of it
            onsets = [e.time for e in members]
            assert max(onsets) - min(onsets) <= 0.01 + 1e-9

    def test_switch_failure_degrades_every_uplink_pair(self):
        sched = FaultSchedule.random(
            n_nodes=6, seed=11, horizon=1.0, rack_size=2,
            switch_flaky_rate=3.0, mean_outage=0.05,
        )
        flaky = [e for e in sched if e.kind == "flaky_link"]
        assert flaky
        groups = {}
        for e in flaky:
            groups.setdefault(e.duration, []).append(e)
        for members in groups.values():
            links = {e.link for e in members}
            racks = {src // 2 for src, _ in links}
            assert len(racks) == 1  # one switch per event
            rack = racks.pop()
            inside = {rack * 2, rack * 2 + 1}
            expected = {
                (n, o) for n in inside for o in range(6) if o not in inside
            }
            assert links == expected  # every (member, outside) pair

    def test_correlated_rates_require_rack_size(self):
        with pytest.raises(ValueError, match="rack_size"):
            FaultSchedule.random(n_nodes=4, rack_crash_rate=1.0)
        with pytest.raises(ValueError, match="burst_spread"):
            FaultSchedule.random(
                n_nodes=4, rack_size=2, rack_crash_rate=1.0, burst_spread=-1.0
            )


# ---------------------------------------------------------------------------
class TestSegmentRetryBudget:
    STRIPED = dict(
        membership_enabled=False,
        stripe_large_files=True,
        stripe_threshold=40_000,
        stripe_segment=20_000,
    )

    def striped_read(self, budget):
        env, dep, _ = build(
            n_nodes=4, **{**self.STRIPED, "segment_retry_budget": budget}
        )
        run_epoch(env, dep, range(4), files=[("/big/f0", 80_000)])
        dep.inject(FaultSchedule([crash(0.0, 1)]))
        run_epoch(env, dep, [0], files=[("/big/f0", 80_000)])
        m = dep.metrics
        return (
            m.counter("hvac.client_seg_fallbacks").value,
            m.counter("hvac.client_retries").value,
        )

    def test_budget_caps_per_segment_walk(self):
        fallbacks_budgeted, retries_budgeted = self.striped_read(budget=1)
        fallbacks_default, retries_default = self.striped_read(budget=0)
        # a one-attempt budget degrades the dead server's segments to
        # the PFS immediately, where the default walk reaches the
        # surviving replica instead — the budget trades bounded segment
        # latency for extra fallbacks
        assert fallbacks_budgeted >= 1
        assert fallbacks_budgeted >= fallbacks_default
        # ...and never enters the retry ladder
        assert retries_budgeted < retries_default

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            TESTING.with_hvac(segment_retry_budget=-1)
