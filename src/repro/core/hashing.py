"""Hash-based I/O redirection (paper §III-E).

HVAC determines the cache location of a file *algorithmically* from the
file path and the job's node allocation — no metadata store, no
broadcast lookups.  Each file is homed at exactly one HVAC server
(replication, §III-H, extends this to an ordered replica set).

Two schemes are provided:

* ``mod`` — ``hash(path) % n_servers``; what the HVAC prototype ships.
* ``consistent`` — a consistent-hash ring with virtual nodes (the
  CephFS/GekkoFS-style alternative the paper cites); minimizes movement
  when the server set changes and is the natural base for failover.

Both use a process-stable 64-bit hash so placement is reproducible
across runs and identical for every client — the property that lets
clients find data without asking anyone.
"""

from __future__ import annotations

import bisect
from typing import Sequence

import numpy as np

from ..simcore import stable_hash64

__all__ = [
    "Placement",
    "ModuloPlacement",
    "ConsistentHashPlacement",
    "LocalityPlacement",
    "TopologyAwarePlacement",
    "make_placement",
    "placement_histogram",
]


class Placement:
    """Maps file paths to an ordered list of server indices."""

    def __init__(self, n_servers: int, replication_factor: int = 1):
        if n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if not 1 <= replication_factor <= n_servers:
            raise ValueError("replication_factor must be in [1, n_servers]")
        self.n_servers = n_servers
        self.replication_factor = replication_factor

    def home(self, path: str, client: int | None = None) -> int:
        """The primary server for ``path``."""
        return self.replicas(path, client)[0]

    def replicas(self, path: str, client: int | None = None) -> list[int]:
        """Ordered replica set: primary first, then failover targets."""
        raise NotImplementedError


class ModuloPlacement(Placement):
    """``hash(path) % n`` with successive servers as replicas."""

    def replicas(self, path: str, client: int | None = None) -> list[int]:
        primary = stable_hash64("hvac-home", path) % self.n_servers
        return [
            (primary + i) % self.n_servers for i in range(self.replication_factor)
        ]


class ConsistentHashPlacement(Placement):
    """Consistent hashing with virtual nodes.

    Replicas are the next *distinct physical servers* clockwise on the
    ring, so losing a server reassigns only its arc.
    """

    def __init__(
        self,
        n_servers: int,
        replication_factor: int = 1,
        vnodes: int = 64,
    ):
        super().__init__(n_servers, replication_factor)
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for server in range(n_servers):
            for v in range(vnodes):
                points.append((stable_hash64("hvac-ring", server, v), server))
        points.sort()
        self._ring_keys = [k for k, _ in points]
        self._ring_servers = [s for _, s in points]

    def replicas(self, path: str, client: int | None = None) -> list[int]:
        key = stable_hash64("hvac-home", path)
        idx = bisect.bisect_right(self._ring_keys, key) % len(self._ring_keys)
        out: list[int] = []
        i = idx
        while len(out) < self.replication_factor:
            server = self._ring_servers[i]
            if server not in out:
                out.append(server)
            i = (i + 1) % len(self._ring_keys)
        return out


class LocalityPlacement(Placement):
    """Deterministic local/remote split for the Fig 13 cache-size study.

    The paper manually controls what fraction of the dataset is resident
    on the training node ("L%") versus remote nodes ("R%").  Placement
    here depends on the *client*: a stable per-(path) coin with
    probability ``local_fraction`` homes the file at one of the client
    node's own servers; otherwise at a server on a different node.
    """

    def __init__(
        self,
        n_servers: int,
        servers_per_node: int,
        local_fraction: float,
        replication_factor: int = 1,
    ):
        super().__init__(n_servers, replication_factor)
        if not 0 <= local_fraction <= 1:
            raise ValueError("local_fraction must be in [0, 1]")
        if n_servers % servers_per_node:
            raise ValueError("n_servers must be a multiple of servers_per_node")
        self.servers_per_node = servers_per_node
        self.local_fraction = local_fraction
        self.n_nodes = n_servers // servers_per_node

    def replicas(self, path: str, client: int | None = None) -> list[int]:
        if client is None:
            raise ValueError("LocalityPlacement requires the client node id")
        h = stable_hash64("hvac-local", path)
        coin = (h & 0xFFFFFFFF) / 0x100000000
        inst = (h >> 32) % self.servers_per_node
        if coin < self.local_fraction or self.n_nodes == 1:
            node = client
        else:
            other = stable_hash64("hvac-rnode", path) % (self.n_nodes - 1)
            node = other if other < client else other + 1
        primary = node * self.servers_per_node + inst
        return [
            (primary + i * self.servers_per_node) % self.n_servers
            for i in range(self.replication_factor)
        ]


class TopologyAwarePlacement(Placement):
    """Rack-aware replica placement (paper conclusion: "job topology
    partitioning enabling redundancy for reliability and performance").

    The primary home comes from a base placement; each additional
    replica is forced into a *different rack* (fault domain), so a rack
    loss never takes out every copy, and readers can prefer a same-rack
    replica to keep traffic off oversubscribed uplinks.
    """

    def __init__(
        self,
        base: Placement,
        servers_per_node: int,
        rack_size: int,
        replication_factor: int = 2,
    ):
        if rack_size < 1:
            raise ValueError("rack_size must be >= 1")
        if servers_per_node < 1:
            raise ValueError("servers_per_node must be >= 1")
        super().__init__(base.n_servers, replication_factor)
        self.base = base
        self.servers_per_node = servers_per_node
        self.rack_size = rack_size
        self.servers_per_rack = servers_per_node * rack_size
        self.n_racks = -(-base.n_servers // self.servers_per_rack)
        if self.replication_factor > self.n_racks:
            raise ValueError(
                f"replication factor {replication_factor} exceeds "
                f"{self.n_racks} rack fault domains"
            )

    def rack_of(self, server: int) -> int:
        return (server // self.servers_per_node) // self.rack_size

    def replicas(self, path: str, client: int | None = None) -> list[int]:
        primary = self.base.home(path)
        out = [primary]
        base_rack = self.rack_of(primary)
        for k in range(1, self.replication_factor):
            rack = (base_rack + k) % self.n_racks
            lo = rack * self.servers_per_rack
            hi = min(lo + self.servers_per_rack, self.n_servers)
            out.append(lo + stable_hash64("hvac-topo", path, k) % (hi - lo))
        return out


def make_placement(
    scheme: str,
    n_servers: int,
    replication_factor: int = 1,
    vnodes: int = 64,
) -> Placement:
    """Factory keyed by :attr:`HVACSpec.hash_scheme`."""
    if scheme == "mod":
        return ModuloPlacement(n_servers, replication_factor)
    if scheme == "consistent":
        return ConsistentHashPlacement(n_servers, replication_factor, vnodes)
    raise ValueError(f"unknown hash scheme {scheme!r}")


def placement_histogram(
    placement: Placement,
    paths: Sequence[str],
    sizes: Sequence[int] | None = None,
) -> np.ndarray:
    """Files (or bytes, if ``sizes`` given) homed per server.

    This is the quantity behind the paper's Fig 15 load-distribution CDF.
    """
    counts = np.zeros(placement.n_servers, dtype=np.float64)
    if sizes is None:
        for path in paths:
            counts[placement.home(path)] += 1
    else:
        if len(sizes) != len(paths):
            raise ValueError("paths and sizes must have equal length")
        for path, size in zip(paths, sizes):
            counts[placement.home(path)] += size
    return counts
