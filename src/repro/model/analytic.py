"""Closed-form performance model (cross-check for the event simulation).

The discrete-event simulation is exact but O(transactions); this module
predicts the same quantities from saturation/bottleneck analysis so the
full 1→1,024-node sweeps of the paper can be produced instantly and the
DES validated against it at the scales where both run.

Model structure (all rates per second, sizes in bytes):

* Demand: ``n_nodes × procs_per_node × samples_per_sec_per_gpu`` files/s
  and the corresponding byte rate.
* GPFS ceiling: min(metadata transaction ceiling, aggregate bandwidth,
  per-node client links).
* XFS ceiling: per-node NVMe (files/s from latency+bandwidth; bytes/s).
* HVAC ceiling: min(NVMe, per-instance mover rate × instances, NIC for
  the remote fraction), with additive per-file latency in the
  latency-bound (unsaturated) regime.
* Epoch time = files / achieved_rate, where achieved rate accounts for
  both the throughput ceiling and the synchronous-read latency path.

The latency model treats each rank as a closed single-customer loop
(read file, then compute): per-file cycle = io_latency + compute, so a
rank achieves ``1 / cycle`` files/s unless a shared ceiling binds first.
That is exactly the structure of the simulated training loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.specs import ClusterSpec
from ..dl.dataset import DatasetSpec
from ..dl.models import ModelSpec

__all__ = ["AnalyticModel", "EpochPrediction"]


@dataclass(frozen=True)
class EpochPrediction:
    """Predicted steady-state epoch behaviour for one system."""

    system: str
    epoch_seconds: float
    bottleneck: str
    achieved_files_per_sec: float

    @property
    def epoch_minutes(self) -> float:
        return self.epoch_seconds / 60.0


class AnalyticModel:
    """Bottleneck analysis for one (cluster, model, dataset, scale) tuple."""

    def __init__(
        self,
        spec: ClusterSpec,
        model: ModelSpec,
        dataset: DatasetSpec,
        n_nodes: int,
        procs_per_node: int = 6,
        batch_size: int = 0,
    ):
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.spec = spec
        self.model = model
        self.dataset = dataset
        self.n_nodes = n_nodes
        self.procs_per_node = procs_per_node
        self.batch_size = batch_size or model.default_batch_size
        self.n_ranks = n_nodes * procs_per_node

    # -- demand ------------------------------------------------------------
    @property
    def files_per_epoch(self) -> int:
        return self.dataset.n_train_files

    #: fraction of the allreduce hidden behind backward compute (see
    #: TrainingConfig.comm_overlap — same default, same rationale).
    comm_overlap: float = 1.0
    #: per-iteration framework cost (see TrainingConfig.iteration_overhead)
    iteration_overhead: float = 0.5e-3
    #: batch-arrival correction for the data-mover queue: ranks issue
    #: reads in back-to-back iteration bursts, so waiting time follows
    #: M^[X]/M/1 with burst size k (≈ (k+1)/2 × the Poisson wait).
    #: k≈8 matches the simulator's iteration granularity and the DES
    #: measurements (see EXPERIMENTS.md cross-validation).
    mover_burst_factor: float = 4.5

    @property
    def compute_sec_per_file(self) -> float:
        exposed_comm = (1.0 - self.comm_overlap) * self.model.allreduce_time(
            self.n_ranks, self.spec.network.nic_bandwidth
        )
        return (
            1.0 / self.model.samples_per_sec_per_gpu
            + (exposed_comm + self.iteration_overhead) / self.batch_size
        )

    @property
    def mean_file_bytes(self) -> float:
        return self.dataset.mean_file_bytes

    # -- per-system latency (seconds per file, unloaded) ---------------------
    def gpfs_latency(self) -> float:
        pfs = self.spec.pfs
        op = 1.0 / pfs.metadata_ops_per_sec
        meta = (pfs.ops_per_open + pfs.ops_per_close) * op + 2 * pfs.client_overhead
        read = pfs.data_latency + self.mean_file_bytes / pfs.data_server_bandwidth
        link = self.mean_file_bytes / self.spec.network.nic_bandwidth
        return meta + read + link

    def xfs_latency(self) -> float:
        nvme = self.spec.node.nvme
        return (
            nvme.fs_open_close_latency
            + nvme.read_latency
            + self.mean_file_bytes / nvme.read_bandwidth
        )

    def hvac_latency(self, instances: int, local_fraction: float | None = None) -> float:
        """Warm-epoch per-file latency through the HVAC path.

        Includes the queueing delay at the per-instance data-mover
        thread (M/D/1 waiting time), solved by fixed point with the
        closed-loop demand: per-rank request rate depends on the
        latency, which depends on the mover utilization, which depends
        on the rate.  This is what separates HVAC(1×1) from HVAC(4×1)
        below the hard mover ceiling (Fig 9b).
        """
        hvac = self.spec.hvac
        net = self.spec.network
        nvme = self.spec.node.nvme
        if local_fraction is None:
            local_fraction = 1.0 / max(1, self.n_nodes)
        client = 3 * hvac.client_request_overhead  # open, read, close hooks
        rpc = 2 * (net.per_message_overhead + net.link_latency) + 2e-6
        service = hvac.server_request_overhead
        read = nvme.read_latency + self.mean_file_bytes / nvme.read_bandwidth
        remote_bulk = self.mean_file_bytes / net.nic_bandwidth + net.link_latency
        local_bulk = self.mean_file_bytes / net.loopback_bandwidth
        bulk = local_fraction * local_bulk + (1 - local_fraction) * remote_bulk
        # NVMe read and bulk transfer are pipelined chunks: pay the max.
        fixed = client + rpc + max(read, bulk)

        latency = fixed + service
        for _ in range(8):  # fixed point converges in a few rounds
            cycle = latency + self.compute_sec_per_file
            per_node_rate = self.procs_per_node / cycle
            rho = min(per_node_rate * service / instances, 0.95)
            wait = self.mover_burst_factor * rho * service / (1.0 - rho)
            latency = fixed + service + wait
        return latency

    # -- throughput ceilings (files/s, whole job) ----------------------------
    def gpfs_ceiling(self) -> tuple[float, str]:
        pfs = self.spec.pfs
        ops_per_tx = pfs.ops_per_open + pfs.ops_per_close
        meta = pfs.aggregate_metadata_ops / ops_per_tx
        bw = pfs.aggregate_bandwidth / self.mean_file_bytes
        nsd_req = pfs.n_data_servers / (
            pfs.data_server_overhead
            + self.mean_file_bytes / pfs.data_server_bandwidth
        )
        links = (
            self.n_nodes * self.spec.network.nic_bandwidth / self.mean_file_bytes
        )
        ceiling = min(meta, bw, nsd_req, links)
        name = {
            meta: "metadata",
            bw: "pfs-bandwidth",
            nsd_req: "nsd-requests",
            links: "client-links",
        }[ceiling]
        return ceiling, name

    def xfs_ceiling(self) -> tuple[float, str]:
        nvme = self.spec.node.nvme
        per_node_bw = nvme.read_bandwidth / self.mean_file_bytes
        per_node_iops = nvme.queue_depth / (
            nvme.read_latency + self.mean_file_bytes / nvme.read_bandwidth
        )
        per_node = min(per_node_bw, per_node_iops)
        name = "nvme-bandwidth" if per_node == per_node_bw else "nvme-iops"
        return per_node * self.n_nodes, name

    def hvac_ceiling(self, instances: int) -> tuple[float, str]:
        hvac = self.spec.hvac
        nvme_rate, _ = self.xfs_ceiling()
        mover = self.n_nodes * instances / hvac.server_request_overhead
        remote_frac = 1 - 1.0 / max(1, self.n_nodes)
        nic = (
            self.n_nodes
            * self.spec.network.nic_bandwidth
            / (self.mean_file_bytes * max(remote_frac, 1e-9))
        )
        ceiling = min(nvme_rate, mover, nic)
        name = {nvme_rate: "nvme", mover: "data-mover", nic: "network"}[ceiling]
        return ceiling, name

    # -- epoch predictions ---------------------------------------------------
    def _epoch(
        self, system: str, latency: float, ceiling: float, bottleneck: str
    ) -> EpochPrediction:
        # Latency-bound per-rank rate (closed-loop: io then compute)...
        per_rank = 1.0 / (latency + self.compute_sec_per_file)
        demand = per_rank * self.n_ranks
        # ...clipped by the shared throughput ceiling.
        achieved = min(demand, ceiling)
        if achieved == demand:
            bottleneck = "compute+latency"
        epoch = self.files_per_epoch / achieved
        return EpochPrediction(
            system=system,
            epoch_seconds=epoch,
            bottleneck=bottleneck,
            achieved_files_per_sec=achieved,
        )

    def predict_gpfs(self) -> EpochPrediction:
        ceiling, name = self.gpfs_ceiling()
        return self._epoch("GPFS", self.gpfs_latency(), ceiling, name)

    def predict_xfs(self) -> EpochPrediction:
        ceiling, name = self.xfs_ceiling()
        return self._epoch("XFS-on-NVMe", self.xfs_latency(), ceiling, name)

    def predict_hvac(self, instances: int = 1) -> EpochPrediction:
        ceiling, name = self.hvac_ceiling(instances)
        return self._epoch(
            f"HVAC({instances}x1)", self.hvac_latency(instances), ceiling, name
        )

    def predict_hvac_cold(self, instances: int = 1) -> EpochPrediction:
        """First (cold) epoch: every file also flows once through GPFS."""
        gpfs_ceiling, gname = self.gpfs_ceiling()
        hvac_ceiling, hname = self.hvac_ceiling(instances)
        ceiling = min(gpfs_ceiling, hvac_ceiling)
        name = gname if ceiling == gpfs_ceiling else hname
        latency = self.gpfs_latency() + self.hvac_latency(instances)
        return self._epoch(f"HVAC({instances}x1)-cold", latency, ceiling, name)

    def predict_mdtest(
        self, system: str, file_size: int, ranks_per_node: int = 6
    ) -> float:
        """Transactions/s for an MDTest-style pure-I/O loop (no compute)."""
        n_ranks = self.n_nodes * ranks_per_node
        if system == "gpfs":
            pfs = self.spec.pfs
            latency = (
                (pfs.ops_per_open + pfs.ops_per_close) / pfs.metadata_ops_per_sec
                + 2 * pfs.client_overhead
                + pfs.data_latency
                + file_size / pfs.data_server_bandwidth
                + file_size / self.spec.network.nic_bandwidth
            )
            ops_per_tx = pfs.ops_per_open + pfs.ops_per_close
            ceiling = min(
                pfs.aggregate_metadata_ops / ops_per_tx,
                pfs.aggregate_bandwidth / file_size,
            )
        elif system == "xfs":
            nvme = self.spec.node.nvme
            latency = (
                nvme.fs_open_close_latency
                + nvme.read_latency
                + file_size / nvme.read_bandwidth
            )
            ceiling = self.n_nodes * min(
                nvme.read_bandwidth / file_size,
                nvme.queue_depth / (nvme.read_latency + file_size / nvme.read_bandwidth),
            )
        else:
            raise ValueError(f"unknown MDTest system {system!r}")
        return min(n_ranks / latency, ceiling)
