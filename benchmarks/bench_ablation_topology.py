"""Ablation: topology-aware replica placement (paper conclusion).

"Future works include ... job topology partitioning enabling redundancy
for reliability and performance."  With an oversubscribed rack fabric,
rack-aware replicas + same-rack reads (a) keep warm traffic off the
uplinks and (b) survive a whole-rack loss without touching the PFS.
"""

import dataclasses

import pytest

from repro.analysis import format_table
from repro.cluster import Allocation, SUMMIT
from repro.core import HVACDeployment
from repro.simcore import AllOf, Environment
from repro.storage import GPFS

N_NODES = 16
RACK = 4
FILES = [(f"/d/f{i}", 163_000) for i in range(256)]


def _spec(topology_aware: bool):
    spec = SUMMIT.with_hvac(replication_factor=2, topology_aware=topology_aware)
    return dataclasses.replace(
        spec,
        network=dataclasses.replace(
            spec.network,
            rack_size=RACK,
            # 2:1 oversubscribed uplinks make rack locality matter.
            rack_uplink_bandwidth=RACK * spec.network.nic_bandwidth / 2,
        ),
    )


def _sweep(env, dep):
    def reader(node):
        cli = dep.client(node)
        for path, size in FILES:
            yield from cli.read_file(path, size, node)

    t0 = env.now
    procs = [env.process(reader(n)) for n in range(N_NODES)]

    def wait():
        yield AllOf(env, procs)

    env.run(env.process(wait()))
    return env.now - t0


def _run():
    out = {}
    for label, topo in (("hash-only replicas", False), ("topology-aware", True)):
        env = Environment()
        spec = _spec(topo)
        alloc = Allocation(env, spec, N_NODES)
        pfs = GPFS(env, spec.pfs, N_NODES, spec.network.nic_bandwidth)
        dep = HVACDeployment(alloc, pfs)
        _sweep(env, dep)  # populate
        before = dep.metrics.counter("fabric.inter_rack_transfers").value
        warm = _sweep(env, dep)
        inter_rack = (
            dep.metrics.counter("fabric.inter_rack_transfers").value - before
        )
        # Rack-loss survivability: kill rack 1 entirely.
        for node in range(RACK, 2 * RACK):
            dep.fail_node(node)
        fb_before = dep.metrics.counter("hvac.client_pfs_fallback").value
        _sweep_nodes = [n for n in range(N_NODES) if not RACK <= n < 2 * RACK]

        def reader(node):
            cli = dep.client(node)
            for path, size in FILES:
                yield from cli.read_file(path, size, node)

        procs = [env.process(reader(n)) for n in _sweep_nodes]

        def wait():
            yield AllOf(env, procs)

        env.run(env.process(wait()))
        fallbacks = dep.metrics.counter("hvac.client_pfs_fallback").value - fb_before
        out[label] = (warm, inter_rack, fallbacks)
        dep.teardown()
    return out


@pytest.mark.benchmark(group="ablation")
def test_ablation_topology_aware(benchmark, capsys):
    out = benchmark.pedantic(_run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["placement", "warm sweep (s)", "inter-rack transfers",
             "PFS fallbacks after rack loss"],
            [[k, t, n, f] for k, (t, n, f) in out.items()],
            title=(f"Ablation: topology-aware replicas "
                   f"({N_NODES} nodes, racks of {RACK}, 2:1 uplinks)"),
        ))

    plain = out["hash-only replicas"]
    topo = out["topology-aware"]
    # Rack-aware reads cut uplink traffic...
    assert topo[1] < plain[1]
    # ...and a whole-rack loss is absorbed by cross-rack replicas.
    assert topo[2] == 0
