"""Module-level call graph for the interprocedural taint pass.

The per-function AST rules in :mod:`.rules` see one function body at a
time, so a wall-clock read (or any other nondeterminism primitive)
hidden one call deep in a helper — possibly in another module — is
invisible at the call site.  This module parses a set of files together
and extracts, per function:

* the nondeterminism *primitives* its body touches directly
  (wall clocks, non-``RandomStreams`` RNG, salted ``hash()``,
  unordered-set iteration, blocking calls), minus any that carry an
  inline ``# simlint: waive`` — a waived primitive is a sanctioned
  site, not a taint source;
* its outgoing *call sites*, resolved through import aliases, relative
  imports, one level of package re-export, and ``self.``/``cls.``
  method dispatch;
* which of its *parameters* it iterates (directly or by passing them
  on), so a caller handing a ``set`` to an innocent-looking helper is
  still caught;
* whether it *returns* an unordered container — directly, or verbatim
  through another call (resolved by a fixpoint in :mod:`.taint`) — and
  which of its call sites feed a ``for``/comprehension, so hash order
  crossing a return boundary is flagged at the loop (SIM013).

:mod:`.taint` runs the interprocedural fixpoint over this graph.
Resolution is deliberately conservative: a call that cannot be resolved
to a known function contributes nothing (no false SIM011s from duck
typing), and ``obj.method()`` on an unknown object is skipped.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field

from .rules import (
    _BLOCKING,
    _RNG_CONSTRUCT,
    _RNG_GLOBAL_DRAW,
    _WALL_CLOCK,
)

__all__ = ["CallGraph", "CallSite", "FunctionInfo", "TaintSource", "module_name_for"]

#: maximum re-export hops followed when resolving ``from pkg import name``
_REEXPORT_DEPTH = 3


@dataclass(frozen=True)
class TaintSource:
    """A nondeterminism primitive touched directly by one function."""

    rule: str  #: the underlying SIM rule code (SIM001/002/003/004/007)
    kind: str  #: human-readable primitive, e.g. ``"wall-clock read time.time"``
    line: int  #: line within the defining file


@dataclass
class CallSite:
    """One outgoing call from a function body."""

    line: int
    col: int
    display: str  #: the call target as written in source ("helpers.now")
    ref: tuple | None  #: unresolved reference, resolved in :meth:`CallGraph.build`
    target: str | None = None  #: resolved function key, if any
    set_args: tuple[int, ...] = ()  #: positional args that are known sets
    param_args: tuple[tuple[int, str], ...] = ()  #: (pos, caller param) pass-throughs
    in_return: bool = False  #: the call is the caller's ``return`` expression
    in_yield_from: bool = False  #: the call is a ``yield from`` delegate
    iterated: bool = False  #: the call's result feeds a ``for``/comprehension


@dataclass
class FunctionInfo:
    """One module- or class-level function and its taint-relevant facts."""

    key: str  #: graph key: ``"<module>::<qualname>"``
    module: str
    qualname: str
    path: str
    line: int
    scope: str  #: ``"sim"`` | ``"runtime"`` (from :func:`..linter.scope_of`)
    params: tuple[str, ...]  #: positional params, ``self``/``cls`` stripped
    sources: list[TaintSource] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    iterated_params: set[str] = field(default_factory=set)
    returns_unordered: bool = False  #: returns a set expr (or, after the
    #: fixpoint in :mod:`.taint`, passes through a callee that does)
    yields_unordered: bool = False  #: ``yield from``-s a set expr (or,
    #: after the fixpoint in :mod:`.taint`, delegates to one that does)


def module_name_for(path: str) -> str:
    """A dotted module name derived from the file path.

    Only used for *suffix* matching during import resolution, so the
    leading directories (``src``, a tmp dir, ...) are harmless.
    """
    norm = os.path.normpath(path)
    if norm.endswith(".py"):
        norm = norm[:-3]
    parts = [p for p in norm.split(os.sep) if p not in ("", ".", "..")]
    return ".".join(parts)


class _ModuleScanner(ast.NodeVisitor):
    """Extract :class:`FunctionInfo` records from one parsed module."""

    def __init__(self, module: str, path: str, scope: str, waived):
        self.module = module
        self.path = path
        self.scope = scope
        self._waived = waived  # callable (line, rule) -> bool
        self.functions: dict[str, FunctionInfo] = {}
        self.imports: dict[str, str] = {}  # alias -> dotted target
        self._set_names: set[str] = set()
        self._class_stack: list[str] = []
        self._func_stack: list[FunctionInfo] = []
        self._nested_depth = 0  # inside a nested def: returns belong to it
        self._return_calls: set[int] = set()  # id()s of return-position Calls
        self._yield_calls: set[int] = set()  # id()s of yield-from delegate Calls
        self._iterated_calls: set[int] = set()  # id()s of for/comp-iter Calls

    # -- import tracking (same alias model as rules._SimVisitor) ----------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.imports[alias.asname or alias.name.split(".")[0]] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:  # relative import: anchor on this module's package
            parts = self.module.split(".")
            # level 1 = this package (strip the module filename only)
            anchor = parts[: len(parts) - node.level]
            base = ".".join(anchor + ([node.module] if node.module else []))
        for alias in node.names:
            if base and alias.name != "*":
                self.imports[alias.asname or alias.name] = f"{base}.{alias.name}"
        self.generic_visit(node)

    # -- set tracking (mirrors rules._SimVisitor) --------------------------
    @staticmethod
    def _bound_name(target: ast.expr) -> str | None:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
            return target.attr
        return None

    def _is_set_expr(self, node: ast.expr | None) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        ):
            return True
        name = (
            self._bound_name(node)
            if isinstance(node, (ast.Name, ast.Attribute))
            else None
        )
        return name is not None and name in self._set_names

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            name = self._bound_name(target)
            if name is not None:
                if self._is_set_expr(node.value):
                    self._set_names.add(name)
                else:
                    self._set_names.discard(name)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        name = self._bound_name(node.target)
        if name is not None:
            ann = ast.unparse(node.annotation).split("[")[0]
            if self._is_set_expr(node.value) or ann in (
                "set", "Set", "frozenset", "FrozenSet", "AbstractSet", "MutableSet",
            ):
                self._set_names.add(name)
        self.generic_visit(node)

    # -- function / class structure ----------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_func(self, node) -> None:
        if self._func_stack:
            # Nested def: attribute its body to the enclosing function
            # (conservative: a closure's primitives taint the parent) —
            # except its returns, which do not leave the parent.
            self._nested_depth += 1
            self.generic_visit(node)
            self._nested_depth -= 1
            return
        qual = ".".join([*self._class_stack, node.name])
        params = [a.arg for a in (*node.args.posonlyargs, *node.args.args)]
        if self._class_stack and params and params[0] in ("self", "cls"):
            params = params[1:]
        info = FunctionInfo(
            key=f"{self.module}::{qual}",
            module=self.module,
            qualname=qual,
            path=self.path,
            line=node.lineno,
            scope=self.scope,
            params=tuple(params),
        )
        self.functions[qual] = info
        self._func_stack.append(info)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = visit_AsyncFunctionDef = _visit_func

    # -- primitives and call sites -----------------------------------------
    def _qualname(self, node: ast.expr) -> str | None:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(self.imports.get(node.id, node.id))
            return ".".join(reversed(parts))
        return None

    def _source(self, rule: str, kind: str, node: ast.AST) -> None:
        if not self._func_stack:
            return  # module-level code: nothing to taint through
        if self._waived(node.lineno, rule):
            return  # explicitly sanctioned: not a taint source
        self._func_stack[-1].sources.append(TaintSource(rule, kind, node.lineno))

    #: wrappers that pass their argument's order through to the loop
    _ORDER_PRESERVING = ("list", "tuple", "iter", "enumerate", "reversed")

    def _check_iteration(self, iter_node: ast.expr) -> None:
        if not self._func_stack:
            return
        info = self._func_stack[-1]
        if isinstance(iter_node, ast.Name) and iter_node.id in info.params:
            info.iterated_params.add(iter_node.id)
        elif self._is_set_expr(iter_node):
            self._source("SIM004", "unordered-set iteration", iter_node)
        # SIM013: mark call results that feed the loop, unwrapping
        # order-preserving shims (``sorted(f())`` neutralizes and is
        # not unwrapped, so it never marks the inner call).
        node = iter_node
        while (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._ORDER_PRESERVING
            and node.args
        ):
            node = node.args[0]
        if isinstance(node, ast.Call):
            self._iterated_calls.add(id(node))

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter)
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        # SIM013 bookkeeping: a function that returns a set expression
        # hands unordered iteration order to every caller; one that
        # returns another call's result verbatim may do so transitively
        # (resolved by the fixpoint in :mod:`.taint`).  Nested defs keep
        # their returns to themselves.
        if self._func_stack and not self._nested_depth and node.value is not None:
            info = self._func_stack[-1]
            if self._waived(node.lineno, "SIM013"):
                pass  # sanctioned producer: never a SIM013 source
            elif self._is_set_expr(node.value):
                info.returns_unordered = True
            elif isinstance(node.value, ast.Call):
                self._return_calls.add(id(node.value))
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        # SIM014 bookkeeping: ``yield from <set>`` drains the container
        # in hash order, and ``yield from g(...)`` forwards whatever
        # order the delegate produces (resolved by the fixpoint in
        # :mod:`.taint`).  Order-preserving shims are unwrapped just as
        # at iteration sites, so ``yield from list(g())`` still follows
        # g; ``sorted(...)`` neutralizes.  Nested defs keep their
        # yields to themselves.
        if self._func_stack and not self._nested_depth:
            info = self._func_stack[-1]
            value = node.value
            while (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in self._ORDER_PRESERVING
                and value.args
            ):
                value = value.args[0]
            if self._waived(node.lineno, "SIM014"):
                pass  # sanctioned producer: never a SIM014 source
            elif self._is_set_expr(value):
                info.yields_unordered = True
            elif isinstance(value, ast.Call):
                self._yield_calls.add(id(value))
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iteration(gen.iter)
        self.generic_visit(node)

    visit_ListComp = visit_SetComp = visit_GeneratorExp = visit_DictComp = _visit_comp

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        qual = self._qualname(func) if isinstance(func, (ast.Attribute, ast.Name)) else None
        if qual is not None:
            if qual in _WALL_CLOCK:
                self._source("SIM001", f"wall-clock read {qual}", node)
            elif qual in _RNG_CONSTRUCT or qual in _RNG_GLOBAL_DRAW:
                self._source("SIM002", f"unmanaged RNG {qual}", node)
            elif qual in _BLOCKING:
                self._source("SIM007", f"blocking call {qual}", node)
        if isinstance(func, ast.Name) and func.id == "hash":
            self._source("SIM003", "salted builtin hash()", node)
        self._record_call(node)
        self.generic_visit(node)

    def _record_call(self, node: ast.Call) -> None:
        if not self._func_stack:
            return
        info = self._func_stack[-1]
        func = node.func
        ref: tuple | None = None
        display = ""
        if isinstance(func, ast.Name):
            display = func.id
            ref = ("name", func.id)
        elif isinstance(func, ast.Attribute):
            root = func.value
            chain = [func.attr]
            while isinstance(root, ast.Attribute):
                chain.append(root.attr)
                root = root.value
            if isinstance(root, ast.Name):
                chain.append(root.id)
                chain.reverse()
                display = ".".join(chain)
                if root.id in ("self", "cls") and len(chain) == 2 and self._class_stack:
                    ref = ("self", self._class_stack[-1], chain[1])
                else:
                    ref = ("dotted", tuple(chain))
        if ref is None:
            return
        set_args = tuple(
            i for i, a in enumerate(node.args) if self._is_set_expr(a)
        )
        param_args = tuple(
            (i, a.id)
            for i, a in enumerate(node.args)
            if isinstance(a, ast.Name) and a.id in info.params
        )
        info.calls.append(
            CallSite(
                line=node.lineno,
                col=node.col_offset,
                display=display,
                ref=ref,
                set_args=set_args,
                param_args=param_args,
                in_return=id(node) in self._return_calls,
                in_yield_from=id(node) in self._yield_calls,
                iterated=id(node) in self._iterated_calls,
            )
        )


class _Module:
    __slots__ = ("name", "path", "scope", "functions", "imports")

    def __init__(self, name, path, scope, functions, imports):
        self.name = name
        self.path = path
        self.scope = scope
        self.functions = functions  # qualname -> FunctionInfo
        self.imports = imports  # alias -> dotted target


class CallGraph:
    """All functions across a file set, with resolved call edges."""

    def __init__(self):
        self.modules: dict[str, _Module] = {}
        self.functions: dict[str, FunctionInfo] = {}

    # -- construction -------------------------------------------------------
    @classmethod
    def build(cls, files) -> "CallGraph":
        """``files`` is an iterable of ``(path, tree, scope, waived)``
        where ``waived`` is a ``(line, rule) -> bool`` callable."""
        graph = cls()
        for path, tree, scope, waived in files:
            module = module_name_for(path)
            scanner = _ModuleScanner(module, path, scope, waived)
            scanner.visit(tree)
            graph.modules[module] = _Module(
                module, path, scope, scanner.functions, scanner.imports
            )
            for info in scanner.functions.values():
                graph.functions[info.key] = info
        graph._resolve_calls()
        return graph

    # -- import / call resolution -------------------------------------------
    def _find_module(self, dotted: str) -> _Module | None:
        """Exact key, dotted-suffix match, or the package ``__init__``."""
        for candidate in (dotted, f"{dotted}.__init__"):
            if candidate in self.modules:
                return self.modules[candidate]
        tail = "." + dotted
        init_tail = tail + ".__init__"
        hits = [
            m
            for name, m in self.modules.items()
            if name.endswith(tail) or name.endswith(init_tail)
        ]
        return hits[0] if len(hits) == 1 else None

    def _function_in(self, mod: _Module, name: str, depth: int = 0):
        """``name`` may be ``func`` or ``Class.method``; follows one
        level of ``from .x import name`` re-export per hop."""
        if name in mod.functions:
            return mod.functions[name]
        if depth >= _REEXPORT_DEPTH:
            return None
        head = name.split(".", 1)[0]
        target = mod.imports.get(head)
        if target is None:
            return None
        rest = name[len(head):]  # "" or ".method"
        return self._resolve_dotted(tuple((target + rest).split(".")), depth + 1)

    def _resolve_dotted(self, chain: tuple[str, ...], depth: int = 0):
        """Resolve ``("pkg", "mod", "Class", "meth")``-style chains by
        trying every module/function split point, longest module first."""
        for split in range(len(chain) - 1, 0, -1):
            mod = self._find_module(".".join(chain[:split]))
            if mod is None:
                continue
            found = self._function_in(mod, ".".join(chain[split:]), depth)
            if found is not None:
                return found
        return None

    def _resolve(self, mod: _Module, ref: tuple):
        kind = ref[0]
        if kind == "self":
            _, klass, name = ref
            return mod.functions.get(f"{klass}.{name}")
        if kind == "name":
            name = ref[1]
            if name in mod.functions:
                return mod.functions[name]
            target = mod.imports.get(name)
            if target is not None:
                return self._resolve_dotted(tuple(target.split(".")))
            return None
        # ("dotted", chain): resolve the leading alias, then the chain
        chain = list(ref[1])
        chain[0] = mod.imports.get(chain[0], chain[0])
        flat: list[str] = []
        for part in chain:
            flat.extend(part.split("."))
        return self._resolve_dotted(tuple(flat))

    def _resolve_calls(self) -> None:
        for mod in self.modules.values():
            for info in mod.functions.values():
                for call in info.calls:
                    target = self._resolve(mod, call.ref)
                    if target is not None and target.key != info.key:
                        call.target = target.key
