"""RACE201 fixture: a multi-root write with no declared cell.

``start`` spawns one ``_worker`` process per job (a replicated spawn:
weight 2), and every instance bumps ``self.total`` — shared mutable
state the race sanitizer never hears about.
"""


class Pool:
    def __init__(self, env, jobs):
        self.env = env
        self.jobs = jobs
        self.total = 0

    def start(self):
        for job in self.jobs:
            self.env.process(self._worker(job))

    def _worker(self, job):
        yield self.env.timeout(1.0)
        self.total += job
