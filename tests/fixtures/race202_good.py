"""RACE202 fixture (clean): the declared cell has a write-noted
mutation path, so the declaration is live."""

RACE_CELLS = (
    ("ledger.balance", ("_balance",), "shared running balance"),
)


class Ledger:
    def __init__(self, env):
        self.env = env
        self._balance = 0

    def preview(self, n):
        self.env.note_access("ledger.balance", "r")
        return self._balance + n

    def deposit(self, n):
        self.env.note_access("ledger.balance", "w")
        self._balance += n
