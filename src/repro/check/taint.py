"""Interprocedural taint propagation over the call graph (SIM011).

A function is *tainted* when its body — or anything it transitively
calls — touches a nondeterminism primitive without an inline waiver:
wall-clock reads (SIM001), RNG outside ``RandomStreams`` (SIM002),
salted builtin ``hash()`` (SIM003), unordered-set iteration (SIM004),
blocking calls (SIM007).  Taint flows *backwards* along call edges, so
the per-function AST rules effectively fire at the call site inside sim
code even when the primitive lives in a helper function or another
module — the case the single-function pass is blind to (notably:
helpers in ``runtime``/``posix`` scope, where SIM001/SIM007 are exempt
at the definition but calling them from sim code is still a bug).

Each diagnostic is emitted as **SIM011** at the sim-scope call site and
carries the full source→sink chain, e.g.::

    uses.py:7:12: SIM011 call to 'stamp' reaches wall-clock read
    time.time (SIM001) via stamp -> clock.now_ms

A second, value-level flavor catches unordered-set *arguments*: if the
callee (transitively) iterates one of its parameters and the caller
passes a known ``set`` in that position, the call site is flagged —
the helper's ``for x in items:`` is innocent until someone hands it a
set.

The third flavor runs the same idea forwards through *returns*
(**SIM013**): a function that returns a set expression — or forwards
another unordered producer's result verbatim via ``return g(...)`` —
is an unordered producer, and any sim-scope ``for``/comprehension
iterating its call result replays in hash order.  The diagnostic lands
at the loop's call site, where the fix (``sorted(...)``) belongs.

The fourth flavor follows *yield paths* (**SIM014**): ``yield from``
over a set — or a delegation chain that reaches one, hopping through
``yield from g(...)`` and ``return g(...)`` alike — makes a generator
an unordered producer too, and any sim-scope loop draining it replays
in hash order.  The return-tracking pass cannot see this (a generator
function's ``return`` is its StopIteration, not its items), so the
yield path gets its own fixpoint; the diagnostic again lands at the
consuming loop.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable

from .callgraph import CallGraph, FunctionInfo
from .rules import Violation

__all__ = ["FunctionTaint", "build_graph", "propagate", "taint_violations"]


@dataclass(frozen=True)
class FunctionTaint:
    """Why one function is tainted, with the shortest known chain."""

    rule: str  #: underlying primitive rule (SIM001/002/003/004/007)
    kind: str  #: e.g. ``"wall-clock read time.time"``
    chain: tuple[str, ...]  #: qualnames from this function down to the source


def build_graph(files: Iterable[tuple[str, str]]) -> CallGraph:
    """Parse ``(path, source)`` pairs into a :class:`CallGraph`.

    Waiver detection and scope classification use the same rules as the
    per-file linter, so a waived primitive never becomes a taint source.
    """
    from .linter import scope_of, waived_at

    entries = []
    for path, source in files:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        lines = source.splitlines()

        def waived(line, rule, _lines=lines):
            return waived_at(_lines, line, rule)

        entries.append((path, tree, scope_of(path), waived))
    return CallGraph.build(entries)


def propagate(graph: CallGraph) -> dict[str, dict[str, FunctionTaint]]:
    """Fixpoint taint propagation: ``function key -> rule -> taint``.

    Also folds iterated-parameter summaries through pass-through calls,
    so ``f(items)`` → ``g(items)`` → ``for x in items`` marks *f* as
    iterating its parameter too.
    """
    taints: dict[str, dict[str, FunctionTaint]] = {}
    for key, info in graph.functions.items():
        own: dict[str, FunctionTaint] = {}
        for src in info.sources:
            if src.rule not in own:
                own[src.rule] = FunctionTaint(src.rule, src.kind, (info.qualname,))
        if own:
            taints[key] = own

    # Reverse edges: callee key -> [(caller info, call site)]
    callers: dict[str, list[tuple[FunctionInfo, object]]] = {}
    for info in graph.functions.values():
        for call in info.calls:
            if call.target is not None:
                callers.setdefault(call.target, []).append((info, call))

    # -- taint fixpoint (chains capped so cycles terminate) ----------------
    worklist = list(taints)
    while worklist:
        key = worklist.pop()
        callee_taints = taints.get(key, {})
        for caller, _call in callers.get(key, ()):  # noqa: B007
            mine = taints.setdefault(caller.key, {})
            changed = False
            for rule, t in callee_taints.items():
                if rule not in mine and len(t.chain) < 12:
                    mine[rule] = FunctionTaint(
                        rule, t.kind, (caller.qualname, *t.chain)
                    )
                    changed = True
            if changed:
                worklist.append(caller.key)

    # -- iterated-parameter fixpoint ---------------------------------------
    changed = True
    while changed:
        changed = False
        for info in graph.functions.values():
            for call in info.calls:
                if call.target is None or not call.param_args:
                    continue
                callee = graph.functions[call.target]
                for pos, param in call.param_args:
                    if (
                        pos < len(callee.params)
                        and callee.params[pos] in callee.iterated_params
                        and param not in info.iterated_params
                    ):
                        info.iterated_params.add(param)
                        changed = True

    # -- unordered-return fixpoint (SIM013) --------------------------------
    # ``return g(...)`` forwards g's container verbatim, so a function
    # whose return expression is a call to an unordered producer is an
    # unordered producer itself.
    changed = True
    while changed:
        changed = False
        for info in graph.functions.values():
            if info.returns_unordered:
                continue
            for call in info.calls:
                if (
                    call.in_return
                    and call.target is not None
                    and graph.functions[call.target].returns_unordered
                ):
                    info.returns_unordered = True
                    changed = True
                    break

    # -- unordered yield-path fixpoint (SIM014) ----------------------------
    # ``yield from g(...)`` drains g's container or generator in
    # whatever order it produces, and ``return g(...)`` forwards a
    # tainted generator verbatim — yield taint follows both edges.
    # Runs after the return fixpoint so ``yield from`` of a finished
    # unordered *returner* is caught too.
    changed = True
    while changed:
        changed = False
        for info in graph.functions.values():
            if info.yields_unordered:
                continue
            for call in info.calls:
                if call.target is None:
                    continue
                callee = graph.functions[call.target]
                if (
                    call.in_yield_from
                    and (callee.returns_unordered or callee.yields_unordered)
                ) or (call.in_return and callee.yields_unordered):
                    info.yields_unordered = True
                    changed = True
                    break
    return taints


_MESSAGE = (
    "transitively-tainted call: '{display}' reaches {kind} ({rule}) "
    "via {chain} — hoist the primitive behind env.now/RandomStreams/"
    "stable_hash64/sorted(...), or waive at the source"
)

_SET_ARG_MESSAGE = (
    "transitively-tainted call: '{display}' iterates its argument "
    "#{pos} and this call passes an unordered set ({chain}) — pass "
    "sorted(...) or an ordered container"
)

_RETURN_MESSAGE = (
    "iterating the result of '{display}': {callee} (transitively) "
    "returns an unordered container, so hash order crosses the return "
    "boundary into this loop — return sorted(...) from the producer or "
    "sort at this call site"
)

_YIELD_MESSAGE = (
    "iterating the result of '{display}': {callee} (transitively) "
    "yields from an unordered container, so hash order flows down the "
    "yield path into this loop — yield from sorted(...) in the "
    "producer or sort at this call site"
)


def taint_violations(
    graph: CallGraph,
    taints: dict[str, dict[str, FunctionTaint]] | None = None,
) -> list[Violation]:
    """SIM011 diagnostics at every sim-scope call site of a tainted
    function (plus set-argument hand-offs into param-iterating helpers),
    and SIM013 at loops iterating an unordered producer's return."""
    if taints is None:
        taints = propagate(graph)
    out: list[Violation] = []
    seen: set[tuple] = set()
    for info in graph.functions.values():
        if info.scope != "sim":
            continue
        for call in info.calls:
            if call.target is None:
                continue
            callee = graph.functions[call.target]
            if call.iterated and callee.returns_unordered:
                key = (info.path, call.line, call.col, "SIM013")
                if key not in seen:
                    seen.add(key)
                    out.append(
                        Violation(
                            "SIM013",
                            info.path,
                            call.line,
                            call.col,
                            _RETURN_MESSAGE.format(
                                display=call.display,
                                callee=callee.qualname,
                            ),
                        )
                    )
            if call.iterated and callee.yields_unordered:
                key = (info.path, call.line, call.col, "SIM014")
                if key not in seen:
                    seen.add(key)
                    out.append(
                        Violation(
                            "SIM014",
                            info.path,
                            call.line,
                            call.col,
                            _YIELD_MESSAGE.format(
                                display=call.display,
                                callee=callee.qualname,
                            ),
                        )
                    )
            for rule, t in sorted(taints.get(call.target, {}).items()):
                key = (info.path, call.line, call.col, rule)
                if key in seen:
                    continue
                seen.add(key)
                out.append(
                    Violation(
                        "SIM011",
                        info.path,
                        call.line,
                        call.col,
                        _MESSAGE.format(
                            display=call.display,
                            kind=t.kind,
                            rule=rule,
                            chain=" -> ".join(t.chain),
                        ),
                    )
                )
            for pos, _param in (
                (i, None) for i in call.set_args
            ):
                if (
                    pos < len(callee.params)
                    and callee.params[pos] in callee.iterated_params
                ):
                    key = (info.path, call.line, call.col, "set-arg", pos)
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append(
                        Violation(
                            "SIM011",
                            info.path,
                            call.line,
                            call.col,
                            _SET_ARG_MESSAGE.format(
                                display=call.display,
                                pos=pos,
                                chain=f"{call.display} iterates "
                                f"'{callee.params[pos]}'",
                            ),
                        )
                    )
    out.sort(key=lambda v: (v.path, v.line, v.col))
    return out


def module_taint_violations(
    source: str, path: str, scope: str
) -> list[Violation]:
    """Single-module taint (the :func:`..linter.lint_source` hook).

    Catches same-file helper indirection; the cross-module pass in
    ``repro check --taint`` subsumes this over a whole tree.
    """
    from .linter import waived_at

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError:
        return []
    lines = source.splitlines()
    graph = CallGraph.build(
        [(path, tree, scope, lambda line, rule: waived_at(lines, line, rule))]
    )
    return taint_violations(graph)
