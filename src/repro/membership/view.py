"""Per-node membership views with incarnation counters (SWIM-style).

Every HVAC client (and every server, acting as a gossip bulletin
board) owns a :class:`MembershipView`: its *local belief* about each
cache server's state — ``alive``, ``suspected``, ``dead`` or
``recovering`` — tagged with an **incarnation counter**.  Views are
never consulted by the kernel; they only shape routing decisions
(candidate filtering, :class:`~repro.membership.RemappedPlacement`) and
feed the telemetry pipeline.

Merge rules (the SWIM lattice, adapted to crash-recover servers):

* a higher incarnation always wins — recovery and refutation both bump
  the *server's own* counter, so stale accusations die out;
* at equal incarnation the *worse* state wins
  (``dead > suspected > recovering > alive``), so suspicion spreads
  monotonically and cannot flap from second-hand evidence alone;
* at equal (incarnation, state) only the evidence timestamp is
  refreshed (extends probation, logs nothing).

A ``suspected`` entry escalates to ``dead`` once it has gone
``dead_after`` seconds without refutation — dead servers are dropped
from read routing entirely and only re-contacted by the gossip agents'
backed-off recovery probes (and rediscovered through the recovered
server's own rejoin announcement).

Everything is sim-clock timestamped and allocation-free on the merge
path; state transitions are appended to :attr:`transitions` (the
determinism artifact) and optionally emitted as zero-duration
``membership.transition`` spans.
"""

from __future__ import annotations

from ..simcore import Environment

__all__ = ["ALIVE", "RECOVERING", "SUSPECTED", "DEAD", "STATE_RANK", "MembershipView"]

ALIVE = "alive"
RECOVERING = "recovering"
SUSPECTED = "suspected"
DEAD = "dead"

#: merge precedence at equal incarnation: higher rank wins
STATE_RANK = {ALIVE: 0, RECOVERING: 1, SUSPECTED: 2, DEAD: 3}

#: wire cost per digest entry: sid + incarnation + state + stamp
_ENTRY_BYTES = 24


class MembershipView:
    """One node's belief about every server's liveness."""

    def __init__(
        self,
        env: Environment,
        n_servers: int,
        owner: str = "",
        probation: float = 2.0,
        dead_after: float = 10.0,
        spans=None,
        metrics=None,
    ):
        if n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if probation < 0 or dead_after < 0:
            raise ValueError("probation and dead_after must be >= 0")
        self.env = env
        self.n_servers = n_servers
        self.owner = owner
        self.probation = probation
        self.dead_after = dead_after
        self.spans = spans
        self.metrics = metrics
        self._inc = [0] * n_servers
        self._state = [ALIVE] * n_servers
        #: latest supporting evidence (probation countdown base)
        self._stamp = [0.0] * n_servers
        #: onset of the current suspicion episode (dead-escalation base)
        self._since = [0.0] * n_servers
        #: append-only ``(t, sid, old, new, incarnation, why)`` log — the
        #: membership-transition artifact determinism tests compare
        self.transitions: list[tuple[float, int, str, str, int, str]] = []

    # -- internal -----------------------------------------------------------
    def _adopt(self, sid: int, inc: int, state: str, why: str) -> None:
        # Race-sanitizer cell per (view, member) slot.  The tag makes two
        # same-timestamp adoptions of the identical lattice value (e.g.
        # one death certificate arriving via two gossip digests) count as
        # idempotent rather than racing.
        self.env.note_access(
            f"view.{self.owner}.m{sid}", "w", tag=(sid, inc, state)
        )
        old = self._state[sid]
        now = self.env.now
        if state == SUSPECTED and old != SUSPECTED:
            self._since[sid] = now
        self._inc[sid] = inc
        self._state[sid] = state
        self._stamp[sid] = now
        self.transitions.append((now, sid, old, state, inc, why))
        if self.metrics is not None:
            self.metrics.counter("transitions").incr()
        if self.spans is not None:
            mark = self.spans.begin(
                "membership.transition",
                now,
                owner=self.owner,
                server=sid,
                old=old,
                new=state,
                inc=inc,
                why=why,
            )
            self.spans.end(mark, now)

    # -- queries ------------------------------------------------------------
    def state_of(self, sid: int) -> str:
        """Current belief about ``sid`` (escalating stale suspicion)."""
        if (
            self._state[sid] == SUSPECTED
            and self.env.now - self._since[sid] >= self.dead_after
        ):
            self._adopt(sid, self._inc[sid], DEAD, "escalation")
        return self._state[sid]

    def entry(self, sid: int) -> tuple[int, str, float]:
        return self._inc[sid], self.state_of(sid), self._stamp[sid]

    def incarnation(self, sid: int) -> int:
        return self._inc[sid]

    def routable(self, sid: int) -> bool:
        """May the read path send ``sid`` a request right now?

        ``alive``/``recovering`` always; ``suspected`` once its gossiped
        probation has run out (that request doubles as the re-probe);
        ``dead`` never — recovery discovery is the gossip agents' job.
        """
        state = self.state_of(sid)
        if state == DEAD:
            return False
        if state == SUSPECTED:
            return self.env.now >= self._stamp[sid] + self.probation
        return True

    def placeable(self, sid: int) -> bool:
        """May :class:`RemappedPlacement` keep ``sid`` in a replica set?

        Suspected servers stay placed (probation handles them); dead and
        still-repairing servers have their range remapped away.
        """
        return self.state_of(sid) not in (DEAD, RECOVERING)

    def probe_targets(self) -> list[int]:
        """Servers only a deliberate probe can bring back: dead ones
        (awaiting recovery) and recovering ones (awaiting repair)."""
        return [
            sid
            for sid in range(self.n_servers)
            if self.state_of(sid) in (DEAD, RECOVERING)
        ]

    def counts(self) -> dict[str, int]:
        out = {ALIVE: 0, RECOVERING: 0, SUSPECTED: 0, DEAD: 0}
        for sid in range(self.n_servers):
            out[self.state_of(sid)] += 1
        return out

    # -- first-hand evidence -------------------------------------------------
    def on_suspect(self, sid: int) -> None:
        """Detector listener: local strikes crossed the suspicion bar."""
        state = self.state_of(sid)
        rank = STATE_RANK[state]
        if rank >= STATE_RANK[SUSPECTED]:
            # already suspected/dead: fresh evidence just re-arms probation
            # race: waive RACE203 -- re-arm stores env.now, identical for all same-timestamp writers
            self._stamp[sid] = self.env.now
            return
        self._adopt(sid, self._inc[sid], SUSPECTED, "local")

    def refresh(self, sid: int) -> None:
        """A deliberate probe failed again: re-stamp the current belief."""
        # race: waive RACE203 -- re-stamp stores env.now, identical for all same-timestamp writers
        self._stamp[sid] = self.env.now

    def self_report(self, sid: int, inc: int, state: str) -> None:
        """The server's own authoritative statement about itself."""
        if (inc, STATE_RANK[state]) == (self._inc[sid], STATE_RANK[self._state[sid]]):
            # race: waive RACE203 -- same-lattice-value re-stamp stores env.now, identical for all writers
            self._stamp[sid] = self.env.now
            return
        self._adopt(sid, inc, state, "self")

    # -- gossip -------------------------------------------------------------
    def digest(self) -> tuple[tuple[int, int, str, float], ...]:
        """Compact wire form: every entry that differs from the boot
        state (incarnation 0, alive) — the only ones worth shipping."""
        return tuple(
            (sid, self._inc[sid], self.state_of(sid), self._stamp[sid])
            for sid in range(self.n_servers)
            if self._inc[sid] > 0 or self._state[sid] != ALIVE
        )

    @staticmethod
    def digest_bytes(digest: tuple) -> int:
        return 8 + _ENTRY_BYTES * len(digest)

    def merge(self, digest: tuple, why: str = "gossip") -> int:
        """Fold a peer's digest in; returns how many entries we adopted."""
        adopted = 0
        for sid, inc, state, stamp in digest:
            if not 0 <= sid < self.n_servers:
                continue
            ours = (self._inc[sid], STATE_RANK[self.state_of(sid)])
            theirs = (inc, STATE_RANK[state])
            if theirs > ours:
                self._adopt(sid, inc, state, why)
                adopted += 1
            elif theirs == ours and stamp > self._stamp[sid]:
                # race: waive RACE203 -- guarded max-fold of peer stamps converges in any order
                self._stamp[sid] = stamp
        if adopted and self.metrics is not None:
            self.metrics.counter("merge_adopted").incr(adopted)
        return adopted

    def __repr__(self) -> str:
        counts = self.counts()
        summary = " ".join(f"{k}={v}" for k, v in counts.items() if v)
        return f"<MembershipView {self.owner or 'anon'} {summary}>"
