"""Scenario fuzzer: seeded generator, invariant autopilot, shrinker.

The standing adversary for the HVAC reproduction (ROADMAP: "Scenario
fuzzer + adversarial workload autopilot").  ``repro fuzz`` samples
cluster topologies, fault schedules (incl. correlated rack bursts and
gray failures), dataset skews and pathological workloads; executes each
through the real deployment with spans + fingerprinting attached;
checks six resilience invariants; biases future sampling toward
near-violations; and shrinks every failure to a minimal JSON repro
case.
"""

from .autopilot import Autopilot, CorpusEntry
from .campaign import (
    CampaignResult,
    load_case,
    replay_case,
    run_campaign,
    write_case,
)
from .executor import EpochResult, Observation, execute
from .invariants import (
    INVARIANTS,
    InvariantConfig,
    InvariantReport,
    InvariantViolation,
    check_observation,
)
from .scenario import (
    Scenario,
    ScenarioGenerator,
    Workload,
    WORKLOAD_KINDS,
    scenario_digest,
)
from .shrink import ShrinkResult, shrink

__all__ = [
    "Autopilot",
    "CampaignResult",
    "CorpusEntry",
    "EpochResult",
    "INVARIANTS",
    "InvariantConfig",
    "InvariantReport",
    "InvariantViolation",
    "Observation",
    "Scenario",
    "ScenarioGenerator",
    "ShrinkResult",
    "WORKLOAD_KINDS",
    "Workload",
    "check_observation",
    "execute",
    "load_case",
    "replay_case",
    "run_campaign",
    "scenario_digest",
    "shrink",
    "write_case",
]
