"""SIM016 fixture (clean): the same record shape, but every iteration
over a set-valued field goes through ``sorted(...)``, so hash order
never reaches the kernel."""

from collections import namedtuple

Row = namedtuple("Row", "key members")


def enroll(a, b):
    return Row("k", {a, b})


def flush(env, a, b):
    row = Row("k", {a, b})
    for waiter in sorted(row.members):
        env.process(waiter)
    key, members = row
    return sorted(members)
