"""The look-ahead scheduler: stage exactly the next-``k`` planned files.

One worker process per involved server walks that server's slice of the
global plan (every client's entries homed there, interleaved in plan
order) and keeps each client's *staging frontier* at most
``prefetch_lookahead`` files ahead of its *demand cursor* — the NoPFS
discipline: prefetch just-in-time in access order, never the whole
dataset at once (that is the reactive baseline,
:class:`~repro.core.prefetch.CachePrefetcher`).

Staged reads are ordinary :class:`~repro.core.server.ReadRequest`s on
the server's shared FIFO, so they pay the same data-mover dispatch as
demand traffic and dedup against the server's ``_inflight`` table —
a demand read arriving for a file whose staging is in flight waits on
the copy instead of re-fetching, and vice versa.

Shared-state discipline (race sanitizer):

* each server's staging queue head and credit counter are one named
  cell, ``prefetch.queue.s<id>``, written *only by that server's
  worker process* — single-writer by construction, so real runs are
  sanitizer-clean while an unsynchronized caller (tests) is caught;
* demand notifications only advance the notifying client's own
  watermark and trigger parked worker wakeups (causally chained
  through the kernel's zero-delay parent links), never the cells.

Fault degradation: a dead home server, or a staged fetch that dies with
the server, invalidates that server's slice of the plan — its worker
stops and the counter ``prefetch.invalidations`` records it; demand
reads simply continue on the reactive miss path (client failover,
PFS fallback), so a fault costs staging coverage, never correctness.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..core.deployment import HVACDeployment, client_key_order
from ..core.server import HVACServer, ReadRequest
from ..rpc import RPCError, RPCTimeout
from ..simcore import Environment, cell_name
from .planner import ClairvoyantPlanner

__all__ = ["LookaheadScheduler"]


class LookaheadScheduler:
    """Clairvoyant staging of a planner's schedules onto a deployment."""

    def __init__(
        self,
        deployment: HVACDeployment,
        planner: ClairvoyantPlanner,
        lookahead: Optional[int] = None,
        outstanding: Optional[int] = None,
    ):
        hvac = deployment.spec.hvac
        self.deployment = deployment
        self.env: Environment = deployment.env
        self.planner = planner
        self.lookahead = int(lookahead if lookahead is not None else hvac.prefetch_lookahead)
        self.outstanding = int(
            outstanding if outstanding is not None else hvac.prefetch_outstanding
        )
        if self.lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        if self.outstanding < 1:
            raise ValueError("outstanding must be >= 1")
        keys = planner.keys
        #: per-client demand cursor: how many planned reads have been issued
        self._consumed: dict[object, int] = {key: 0 for key in keys}
        #: clients whose demand stream left the plan (frozen, not fatal)
        self._diverged: set[object] = set()
        self._entries: dict[object, tuple[tuple[str, int], ...]] = {
            key: planner.schedule(key).entries for key in keys
        }
        # Partition every schedule by home server, interleaved in global
        # plan order (plan index first, then client order) — computable
        # from the shared placement alone, in keeping with HVAC's
        # no-metadata philosophy.
        key_rank = {key: i for i, key in enumerate(keys)}
        placement = deployment.placement
        per_server: dict[int, list[tuple[int, int, object, str, int]]] = {}
        for key in keys:
            for plan_idx, (path, size) in enumerate(self._entries[key]):
                home = placement.home(path)
                per_server.setdefault(home, []).append(
                    (plan_idx, key_rank[key], key, path, size)
                )
        for rows in per_server.values():
            rows.sort()
        self._per_server = {sid: per_server[sid] for sid in sorted(per_server)}
        self._wake_order = tuple(self._per_server)
        # Hoisted per-server cell and process names: staging runs per
        # read, so labels must not be rebuilt per event (PERF103).
        self._cells = {
            sid: cell_name("prefetch.queue", "s", sid) for sid in self._per_server
        }
        self._watch_names = {
            sid: f"prefetch.watch.s{sid}" for sid in self._per_server
        }
        #: remaining outstanding-request credits per server
        self._credits: dict[int, int] = {
            sid: self.outstanding for sid in self._per_server
        }
        self._wakeups: dict[int, object] = {}
        self._stopped = False
        self._started = False
        #: servers whose plan slice a fault invalidated
        self.invalidated: set[int] = set()
        self.files_staged = 0
        self.bytes_staged = 0
        scope = deployment.metrics.scope("prefetch")
        self._m_staged = scope.counter("staged_files")
        self._m_staged_bytes = scope.counter("staged_bytes")
        self._m_skipped = scope.counter("skipped")
        self._m_late = scope.counter("late")
        self._m_invalidations = scope.counter("invalidations")
        self._m_divergences = scope.counter("divergences")
        self._m_resumes = scope.counter("resumes")
        #: live worker process per server (guards resume double-spawn)
        self._workers: dict[int, object] = {}

    # -- wiring ------------------------------------------------------------
    def attach(self, client) -> None:
        """Subscribe to one client's demand stream (sets its listener)."""
        client.prefetch_listener = self

    def start(self) -> None:
        """Spawn one staging worker per involved server."""
        if self._started:
            raise RuntimeError("scheduler already started")
        self._started = True
        for sid, entries in self._per_server.items():
            self._workers[sid] = self.env.process(
                self._worker(self.deployment.servers[sid], entries),
                name=f"prefetch.stage.s{sid}",
            )

    def stop(self) -> None:
        """End staging: parked workers drain and exit."""
        self._stopped = True
        self._wake_all()

    @property
    def plan_valid(self) -> bool:
        return not self.invalidated

    # -- demand notifications ----------------------------------------------
    def on_demand_read(self, key, path: str) -> None:
        """A client issued its next planned read: advance its cursor.

        Called synchronously from the client's read path (never yields).
        An off-plan path freezes that client's window — the plan stays
        valid for everyone else, and the reader continues reactively.
        """
        consumed = self._consumed.get(key)
        if consumed is None or key in self._diverged:
            return
        entries = self._entries[key]
        if consumed < len(entries) and entries[consumed][0] != path:
            self._diverged.add(key)
            self._m_divergences.incr()
            return
        self._consumed[key] = consumed + 1
        self._wake_all()

    def _wake_all(self) -> None:
        wakeups = self._wakeups
        for sid in self._wake_order:
            ev = wakeups.get(sid)
            if ev is not None:
                wakeups[sid] = None
                ev.succeed()

    # -- credit accounting (the per-server sanitizer cell) -------------------
    def _take_credit(self, sid: int) -> None:
        self.env.note_access(self._cells[sid], "w")
        self._credits[sid] -= 1

    def _release_credit(self, sid: int) -> None:
        self.env.note_access(self._cells[sid], "w")
        self._credits[sid] += 1

    def _invalidate(self, sid: int) -> None:
        if sid not in self.invalidated:
            # race: waive RACE201 -- monotone idempotent insert; writers converge
            self.invalidated.add(sid)
            self._m_invalidations.incr()

    def on_server_recover(self, server: HVACServer) -> None:
        """A failed home server came back: re-arm its plan slice.

        The fresh worker walks the full slice again; entries whose
        demand read already passed fall to the late-skip, so staging
        restarts exactly at the demand frontier — re-warming the wiped
        cache ahead of the readers instead of leaving them on the
        reactive miss path for the rest of the job.
        """
        sid = server.server_id
        if self._stopped or not self._started:
            return
        if sid not in self.invalidated or sid not in self._per_server:
            return
        worker = self._workers.get(sid)
        if worker is not None and worker.is_alive:
            return  # old worker has not observed the fault yet
        self.invalidated.discard(sid)
        # Reset the credit pool the dead worker abandoned (its window
        # never tail-drained).  No live writer exists for this cell —
        # the old worker is gone and the new one has not run yet.
        self.env.note_access(self._cells[sid], "w")
        self._credits[sid] = self.outstanding
        self._m_resumes.incr()
        self._workers[sid] = self.env.process(
            self._worker(server, self._per_server[sid]),
            name=f"prefetch.stage.s{sid}",
        )

    # -- staging -----------------------------------------------------------
    def _worker(self, server: HVACServer, entries) -> Generator:
        """Stage this server's plan slice, ``outstanding`` at a time."""
        env = self.env
        sid = server.server_id
        cell = self._cells[sid]
        consumed = self._consumed
        lookahead = self.lookahead
        window: list = []
        for plan_idx, _rank, key, path, size in entries:
            # Admission: wait until the entry enters its client's
            # look-ahead window (or the client's stream froze/ended).
            while (
                not self._stopped
                and key not in self._diverged
                and plan_idx >= consumed[key] + lookahead
            ):
                ev = env.event()
                self._wakeups[sid] = ev
                yield ev
            if self._stopped:
                break
            if key in self._diverged:
                continue
            if plan_idx < consumed[key]:
                # Demand already passed this entry (the miss path
                # fetched it); staging it now is pure waste — skip and
                # catch up to the frontier.
                self._m_late.incr()
                continue
            env.note_access(cell, "w")  # staging-queue head advances
            if not server.alive:
                self._invalidate(sid)
                return
            if self._credits[sid] <= 0:
                # Oldest staged fetch must land before the next goes out.
                yield window.pop(0)
                self._release_credit(sid)
                # Give up the turn: a demand read dispatched at this
                # instant reaches the FIFO ahead of the next staged put.
                yield env.timeout(0.0)
                if not server.alive:
                    self._invalidate(sid)
                    return
            if server.cache.contains(path):
                # Already resident: promote it to most-recently-used
                # instead of re-staging — without the touch,
                # interleaved staging for other clients can evict a
                # planned file in the gap between its staging and its
                # demand read.
                server.cache.touch(path)
                self._m_skipped.incr()
                continue
            self._take_credit(sid)
            req = ReadRequest(
                path=path,
                size=size,
                client_node=server.node_id,
                done=env.event(),
            )
            yield server.queue.put(req)
            self.files_staged += 1
            self.bytes_staged += size
            self._m_staged.incr()
            self._m_staged_bytes.incr(size)
            window.append(
                env.process(self._watch(sid, req.done), name=self._watch_names[sid])
            )
        # Drain the tail window so every staged fetch is accounted.
        while window:
            yield window.pop(0)
            self._release_credit(sid)

    def _watch(self, sid: int, done) -> Generator:
        """Absorb one staged fetch's outcome (a staged read has no RPC
        caller to propagate into — a fetch dying with its server must
        invalidate the plan slice, not crash the kernel)."""
        try:
            yield done
        except (RPCError, RPCTimeout):
            self._invalidate(sid)
