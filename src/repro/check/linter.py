"""File walking, scope classification, and inline waivers for simlint.

Usage::

    from repro.check import lint_paths
    violations = lint_paths(["src"])

A violation can be silenced at the offending line (or the line directly
above it) with an explicit, reasoned waiver::

    gen = np.random.default_rng(s)  # simlint: waive SIM002 -- sanctioned site

``# simlint: waive`` with no codes waives every rule on that line; a
comma-separated code list waives only those.  Waivers are deliberately
loud in the diff — the acceptance bar is "fixed or explicitly waived",
never silently ignored.  To keep them from rotting, :func:`lint_tree`
also reports *stale* waivers: comments that no longer suppress any
violation (``repro check`` exits nonzero on them).
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Iterable, Iterator

from .rules import RULES, Violation, collect_violations

__all__ = [
    "StaleWaiver",
    "TreeLint",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "scope_of",
    "waived_at",
]

_WAIVE_RE = re.compile(r"#\s*simlint:\s*waive\b([^#\n]*)")
_CODE_RE = re.compile(r"SIM\d{3}")

#: package path fragments whose code legitimately touches real clocks,
#: threads, and files — SIM001/SIM007 do not apply there
_RUNTIME_PARTS = ("runtime", "posix")

#: directories never descended into
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", "build", "dist"}


def scope_of(path: str) -> str:
    """``"runtime"`` for real-clock/thread packages, else ``"sim"``."""
    parts = os.path.normpath(path).split(os.sep)
    return "runtime" if any(p in _RUNTIME_PARTS for p in parts) else "sim"


def _waived_codes(
    line: str,
    waive_re: re.Pattern = _WAIVE_RE,
    code_re: re.Pattern = _CODE_RE,
) -> set[str] | None:
    """Codes waived by ``line``'s comment: a set, ``{"*"}`` for all,
    or ``None`` when there is no waiver.

    The regex pair parameterizes the waiver dialect so other passes
    (``# perf: waive PERFxxx`` in :mod:`.perf`) reuse the same
    machinery — including stale-waiver detection — without colliding
    with simlint's namespace.
    """
    m = waive_re.search(line)
    if m is None:
        return None
    codes = set(code_re.findall(m.group(1)))
    return codes or {"*"}


def _waiver_line_for(
    lines: list[str],
    line: int,
    rule: str,
    waive_re: re.Pattern = _WAIVE_RE,
    code_re: re.Pattern = _CODE_RE,
) -> int | None:
    """The line number whose waiver covers ``rule`` at ``line``
    (the flagged line itself, or a comment-only line above), or None."""
    for lineno in (line, line - 1):
        if not 1 <= lineno <= len(lines):
            continue
        text = lines[lineno - 1]
        if lineno != line and not text.lstrip().startswith("#"):
            continue
        codes = _waived_codes(text, waive_re, code_re)
        if codes is not None and ("*" in codes or rule in codes):
            return lineno
    return None


def waived_at(lines: list[str], line: int, rule: str) -> bool:
    """Is ``rule`` waived at ``line``?  (Taint-source suppression hook:
    a waived primitive is a sanctioned site, never a taint source.)"""
    return _waiver_line_for(lines, line, rule) is not None


def _apply_waivers(
    violations: list[Violation],
    lines: list[str],
    waive_re: re.Pattern = _WAIVE_RE,
    code_re: re.Pattern = _CODE_RE,
) -> tuple[list[Violation], set[int]]:
    """Drop waived violations; also return the waiver lines that fired
    (so :func:`lint_tree` can flag the ones that did not)."""
    kept = []
    used: set[int] = set()
    for v in violations:
        waiver_line = _waiver_line_for(lines, v.line, v.rule, waive_re, code_re)
        if waiver_line is None:
            kept.append(v)
        else:
            used.add(waiver_line)
    return kept, used


def _waiver_comment_lines(
    source: str,
    waive_re: re.Pattern = _WAIVE_RE,
    code_re: re.Pattern = _CODE_RE,
) -> dict[int, set[str]]:
    """Every *real* comment carrying a waiver: ``line -> codes``.

    Tokenize-based so waiver syntax quoted inside docstrings (this
    file's own docstring, for one) is not mistaken for a live waiver.
    Falls back to a regex scan if the file does not tokenize.
    """
    out: dict[int, set[str]] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                codes = _waived_codes(tok.string, waive_re, code_re)
                if codes is not None:
                    out[tok.start[0]] = codes
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for i, line in enumerate(source.splitlines(), start=1):
            codes = _waived_codes(line, waive_re, code_re)
            if codes is not None:
                out[i] = codes
    return out


def lint_source(
    source: str,
    path: str = "<string>",
    scope: str | None = None,
    rules: Iterable[str] | None = None,
) -> list[Violation]:
    """Lint one module's source text (the fixture-test entry point).

    Includes the *single-module* interprocedural taint pass (SIM011 for
    helpers defined in the same file); ``repro check --taint`` widens
    that to the whole tree.
    """
    active = set(rules) if rules is not None else set(RULES)
    scope_ = scope or scope_of(path)
    tree = ast.parse(source, filename=path)
    violations = collect_violations(tree, path, scope=scope_, rules=active)
    if active & {"SIM011", "SIM013", "SIM014"}:
        from .taint import module_taint_violations

        violations += [
            v
            for v in module_taint_violations(source, path, scope_)
            if v.rule in active
        ]
    violations, _ = _apply_waivers(violations, source.splitlines())
    violations.sort(key=lambda v: (v.line, v.col, v.rule))
    return violations


def lint_file(path: str, rules: Iterable[str] | None = None) -> list[Violation]:
    with open(path, encoding="utf-8") as fh:
        return lint_source(fh.read(), path=path, rules=rules)


def _iter_python_files(root: str) -> Iterator[str]:
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


@dataclass(frozen=True)
class StaleWaiver:
    """An inline waiver that no longer suppresses anything."""

    path: str
    line: int
    codes: frozenset[str]  #: waived codes (``{"*"}`` for a bare waiver)

    def render(self) -> str:
        what = "all rules" if "*" in self.codes else ", ".join(sorted(self.codes))
        return (
            f"{self.path}:{self.line}: stale waiver ({what}) — "
            "suppresses no violation; remove it or fix the code it excuses"
        )


@dataclass
class TreeLint:
    """The result of linting a file set: violations + waiver hygiene."""

    violations: list[Violation]
    stale_waivers: list[StaleWaiver]
    n_files: int

    @property
    def clean(self) -> bool:
        return not self.violations and not self.stale_waivers


def lint_tree(
    paths: Iterable[str],
    rules: Iterable[str] | None = None,
    taint: bool = False,
) -> TreeLint:
    """Lint every ``.py`` file under ``paths``.

    With ``taint=True`` the interprocedural pass runs over the *whole*
    file set at once, so SIM011 crosses module boundaries.  Stale-waiver
    detection only runs with the full rule set (a subset run would
    mis-flag waivers for the rules it skipped); waivers naming SIM011
    are likewise exempt when the cross-module pass is off.
    """
    active = set(rules) if rules is not None else set(RULES)
    unknown = active - set(RULES)
    if unknown:
        raise ValueError(f"unknown rule codes: {sorted(unknown)}")

    files: list[tuple[str, str]] = []
    for root in paths:
        for path in _iter_python_files(root):
            with open(path, encoding="utf-8") as fh:
                files.append((path, fh.read()))

    per_file: dict[str, list[Violation]] = {path: [] for path, _ in files}
    for path, source in files:
        tree = ast.parse(source, filename=path)
        per_file[path].extend(
            collect_violations(tree, path, scope=scope_of(path), rules=active)
        )
    if active & {"SIM011", "SIM013", "SIM014"}:
        if taint:
            from .taint import build_graph, taint_violations

            for v in taint_violations(build_graph(files)):
                if v.rule in active:
                    per_file[v.path].append(v)
        else:
            from .taint import module_taint_violations

            for path, source in files:
                per_file[path].extend(
                    v
                    for v in module_taint_violations(source, path, scope_of(path))
                    if v.rule in active
                )

    violations: list[Violation] = []
    stale: list[StaleWaiver] = []
    check_stale = rules is None
    for path, source in files:
        lines = source.splitlines()
        kept, used = _apply_waivers(per_file[path], lines)
        kept.sort(key=lambda v: (v.line, v.col, v.rule))
        violations.extend(kept)
        if not check_stale:
            continue
        for lineno, codes in sorted(_waiver_comment_lines(source).items()):
            if lineno in used:
                continue
            if not taint and codes & {"SIM011", "SIM013", "SIM014"}:
                continue  # only the cross-module pass can consume it
            stale.append(StaleWaiver(path, lineno, frozenset(codes)))
    return TreeLint(violations, stale, n_files=len(files))


def lint_paths(
    paths: Iterable[str],
    rules: Iterable[str] | None = None,
    taint: bool = False,
) -> list[Violation]:
    """Lint every ``.py`` file under the given files/directories."""
    return lint_tree(paths, rules=rules, taint=taint).violations
