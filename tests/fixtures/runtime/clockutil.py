"""Runtime-scope helper: a real wall-clock read.

Legitimate *here* — ``scope_of`` exempts ``runtime``/``posix`` packages
from SIM001 — but any sim-scope caller inherits the nondeterminism,
which is exactly what the interprocedural taint pass exists to catch.
"""

import time


def read_clock():
    return time.time()
