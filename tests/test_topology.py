"""Tests for the rack topology model and topology-aware placement."""

import pytest

from repro.cluster import Allocation, Fabric, NetworkSpec, TESTING
from repro.core import HVACDeployment, ModuloPlacement, TopologyAwarePlacement
from repro.simcore import AllOf, Environment
from repro.storage import GPFS


def racked_spec(rack_size=2, uplink=None, **hvac):
    import dataclasses

    spec = TESTING.with_hvac(**hvac)
    return dataclasses.replace(
        spec,
        network=dataclasses.replace(
            spec.network,
            rack_size=rack_size,
            rack_uplink_bandwidth=uplink if uplink is not None else 0.0,
        ),
    )


class TestRackedFabric:
    def make(self, env, n=4, rack_size=2, uplink_bw=50.0):
        spec = NetworkSpec(
            nic_bandwidth=100.0,
            link_latency=0.0,
            bisection_bandwidth_per_node=100.0,
            per_message_overhead=0.0,
            loopback_bandwidth=1000.0,
            rack_size=rack_size,
            rack_uplink_bandwidth=uplink_bw,
        )
        return Fabric(env, spec, n)

    def test_rack_of(self):
        env = Environment()
        fab = self.make(env)
        assert fab.rack_of(0) == 0
        assert fab.rack_of(1) == 0
        assert fab.rack_of(2) == 1
        assert fab.rack_of(3) == 1

    def test_flat_fabric_single_rack(self):
        env = Environment()
        spec = NetworkSpec(nic_bandwidth=100.0)
        fab = Fabric(env, spec, 4)
        assert fab.rack_of(3) == 0

    def test_intra_rack_at_nic_speed(self):
        env = Environment()
        fab = self.make(env)

        def proc():
            yield from fab.transfer(0, 1, 100)  # same rack: 100/100 = 1 s

        env.run(env.process(proc()))
        assert env.now == pytest.approx(1.0)

    def test_inter_rack_limited_by_uplink(self):
        env = Environment()
        fab = self.make(env)  # uplink 50 B/s

        def proc():
            yield from fab.transfer(0, 2, 100)  # cross-rack: 100/50 = 2 s

        env.run(env.process(proc()))
        assert env.now == pytest.approx(2.0)
        assert fab.metrics.counter("fabric.inter_rack_transfers").value == 1

    def test_uplink_contention_serializes(self):
        env = Environment()
        fab = self.make(env)

        def proc(src, dst):
            yield from fab.transfer(src, dst, 100)

        env.process(proc(0, 2))
        env.process(proc(1, 3))  # both cross rack0 → rack1 uplink
        env.run()
        assert env.now == pytest.approx(4.0)

    def test_default_uplink_is_unoversubscribed(self):
        env = Environment()
        fab = self.make(env, uplink_bw=0.0)  # 0 → rack_size × nic

        def proc():
            yield from fab.transfer(0, 2, 100)

        env.run(env.process(proc()))
        assert env.now == pytest.approx(1.0)  # NIC-bound, not uplink-bound

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkSpec(rack_size=-1)


class TestTopologyAwarePlacement:
    def make(self, n_servers=8, spn=1, rack_size=2, repl=2):
        base = ModuloPlacement(n_servers)
        return TopologyAwarePlacement(
            base, servers_per_node=spn, rack_size=rack_size,
            replication_factor=repl,
        )

    def test_replicas_in_distinct_racks(self):
        p = self.make()
        for i in range(100):
            reps = p.replicas(f"/f{i}")
            racks = {p.rack_of(s) for s in reps}
            assert len(racks) == len(reps)

    def test_primary_matches_base(self):
        base = ModuloPlacement(8)
        p = TopologyAwarePlacement(base, 1, 2, replication_factor=2)
        for i in range(50):
            assert p.replicas(f"/f{i}")[0] == base.home(f"/f{i}")

    def test_three_way_replication(self):
        p = self.make(n_servers=12, rack_size=2, repl=3)
        reps = p.replicas("/x")
        assert len({p.rack_of(s) for s in reps}) == 3

    def test_too_much_replication_rejected(self):
        with pytest.raises(ValueError):
            self.make(n_servers=4, rack_size=2, repl=3)  # only 2 racks

    def test_validation(self):
        base = ModuloPlacement(4)
        with pytest.raises(ValueError):
            TopologyAwarePlacement(base, 1, 0)
        with pytest.raises(ValueError):
            TopologyAwarePlacement(base, 0, 2)


class TestTopologyAwareHVAC:
    FILES = [(f"/d/f{i}", 20_000) for i in range(24)]

    def build(self, **kw):
        env = Environment()
        spec = racked_spec(rack_size=2, replication_factor=2,
                           topology_aware=True, **kw)
        alloc = Allocation(env, spec, n_nodes=4)
        pfs = GPFS(env, spec.pfs, 4, spec.network.nic_bandwidth)
        dep = HVACDeployment(alloc, pfs)
        return env, dep

    def read_all(self, env, dep, nodes):
        def reader(node):
            cli = dep.client(node)
            for path, size in self.FILES:
                yield from cli.read_file(path, size, node)

        procs = [env.process(reader(n)) for n in nodes]

        def wait():
            yield AllOf(env, procs)

        env.run(env.process(wait()))

    def test_deployment_wraps_placement(self):
        env, dep = self.build()
        assert isinstance(dep.placement, TopologyAwarePlacement)

    def test_requires_rack_size(self):
        env = Environment()
        spec = TESTING.with_hvac(topology_aware=True, replication_factor=2)
        alloc = Allocation(env, spec, n_nodes=4)
        pfs = GPFS(env, spec.pfs, 4, spec.network.nic_bandwidth)
        with pytest.raises(ValueError):
            HVACDeployment(alloc, pfs)

    def test_clients_prefer_same_rack_replica(self):
        env, dep = self.build()
        cli = dep.client(0)  # rack 0
        for path, _ in self.FILES:
            order = cli.replica_order(path)
            racks = [dep.placement.rack_of(s) for s in order]
            my_rack = 0
            if my_rack in racks:
                assert racks[0] == my_rack

    def test_rack_failure_survivable(self):
        """The fault-domain property: lose a whole rack, keep serving
        from replicas without PFS fallback."""
        env, dep = self.build()
        self.read_all(env, dep, [0, 1, 2, 3])
        before = dep.metrics.counter("hvac.client_pfs_fallback").value
        dep.fail_node(2)
        dep.fail_node(3)  # rack 1 gone
        self.read_all(env, dep, [0, 1])
        assert dep.metrics.counter("hvac.client_pfs_fallback").value == before

    def test_same_rack_preference_reduces_uplink_traffic(self):
        def inter_rack_count(topology_aware):
            env = Environment()
            spec = racked_spec(
                rack_size=2,
                replication_factor=2,
                topology_aware=topology_aware,
            )
            alloc = Allocation(env, spec, n_nodes=4)
            pfs = GPFS(env, spec.pfs, 4, spec.network.nic_bandwidth)
            dep = HVACDeployment(alloc, pfs)
            self.read_all(env, dep, [0, 1, 2, 3])  # populate replicas
            before = dep.metrics.counter("fabric.inter_rack_transfers").value
            self.read_all(env, dep, [0, 1, 2, 3])  # warm epoch
            return (
                dep.metrics.counter("fabric.inter_rack_transfers").value - before
            )

        assert inter_rack_count(True) < inter_rack_count(False)
