"""Figure 13: impact of local/remote cache split on HVAC(1×1).

The paper *manually controls* what share of the (cached) dataset sits
on the training node versus remote nodes and finds a negligible
difference — Mercury bulk transfers over Infiniband make remote NVMe
nearly as close as local.

Faithful to that methodology, this is a controlled microbenchmark, not
a full re-sharding training run: every rank owns a fixed shard of the
dataset (so the forced placement stays warm across epochs), reads it in
a fresh shuffled order each epoch with DL-style compute pacing, and the
*second* (fully cached) epoch is measured under each L%/R% split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import format_table
from ..cluster import Allocation, ClusterSpec, SUMMIT
from ..core import HVACDeployment
from ..dl import DatasetSpec, ModelSpec, SyntheticDataset
from ..simcore import AllOf, Environment, RandomStreams
from ..storage import GPFS
from .harness import Scale

__all__ = ["CacheSplitResult", "cache_split"]

DEFAULT_SPLITS = (1.0, 0.75, 0.5, 0.25, 0.0)


@dataclass
class CacheSplitResult:
    """Warm-epoch time per L%/R% configuration."""

    model_name: str
    n_nodes: int
    local_fractions: list[float]
    epoch_seconds: list[float] = field(default_factory=list)

    def max_relative_spread(self) -> float:
        """(max − min) / min over the splits — paper: 'negligible'."""
        lo, hi = min(self.epoch_seconds), max(self.epoch_seconds)
        return (hi - lo) / lo if lo > 0 else 0.0

    def render(self) -> str:
        rows = [
            [f"L{int(100 * f)}%/R{int(100 * (1 - f))}%", t]
            for f, t in zip(self.local_fractions, self.epoch_seconds)
        ]
        return format_table(
            ["split", "warm epoch (s)"],
            rows,
            title=(
                f"Fig 13 ({self.model_name}, {self.n_nodes} nodes): "
                "cached-epoch time vs local/remote split, HVAC(1x1)"
            ),
        )


def cache_split(
    model: ModelSpec,
    dataset_spec: DatasetSpec,
    scale: Scale,
    n_nodes: int = 512,
    batch_size: int = 80,
    local_fractions: tuple[float, ...] = DEFAULT_SPLITS,
    spec: ClusterSpec = SUMMIT,
    seed: int = 0,
) -> CacheSplitResult:
    """Warm-epoch time under forced L%/R% placements."""
    result = CacheSplitResult(
        model_name=model.name,
        n_nodes=n_nodes,
        local_fractions=list(local_fractions),
    )
    n_ranks = n_nodes * scale.procs_per_node
    sample = min(dataset_spec.n_train_files, n_ranks * scale.files_per_rank)
    per_sample_compute = 1.0 / model.samples_per_sec_per_gpu

    for fraction in local_fractions:
        env = Environment()
        dataset, _ = SyntheticDataset.scaled(dataset_spec, sample, seed=seed)
        alloc = Allocation(env, spec, n_nodes)
        pfs = GPFS(
            env,
            spec.pfs,
            n_client_nodes=n_nodes,
            client_link_bandwidth=spec.network.nic_bandwidth,
        )
        dep = HVACDeployment.with_locality_split(
            alloc, pfs, local_fraction=fraction, seed=seed
        )
        rand = RandomStreams(seed)
        sim_batch = scale.sim_batch_size

        def rank_epoch(rank: int, epoch: int):
            node = rank // scale.procs_per_node
            client = dep.client(node)
            shard = list(range(rank, len(dataset), n_ranks))  # fixed shard
            order = rand.child(f"r{rank}e{epoch}").shuffled("o", len(shard))
            for start in range(0, len(order), sim_batch):
                chunk = order[start : start + sim_batch]
                for j in chunk:
                    idx = shard[int(j)]
                    yield from client.read_file(
                        dataset.path(idx), dataset.size(idx), node
                    )
                yield env.timeout(len(chunk) * per_sample_compute)

        def epoch(e: int):
            procs = [
                env.process(rank_epoch(r, e), name=f"r{r}") for r in range(n_ranks)
            ]
            yield AllOf(env, procs)

        env.run(env.process(epoch(0)))  # warm-up: populate the forced placement
        t0 = env.now
        env.run(env.process(epoch(1)))  # measured: fully cached
        result.epoch_seconds.append(env.now - t0)
        dep.teardown()
    return result
