"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for cmd in ("info", "mdtest", "fig8", "fig9", "fig14", "fig15", "train"):
            args = parser.parse_args([cmd])
            assert callable(args.func)

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_model_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig8", "--model", "gpt5"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "2.51" in out  # GPFS TB/s
        assert "resnet50" in out

    def test_mdtest(self, capsys):
        assert main(["mdtest", "--nodes", "1", "2",
                     "--files-per-rank", "4", "--procs-per-node", "2"]) == 0
        out = capsys.readouterr().out
        assert "GPFS" in out and "XFS" in out

    def test_mdtest_analytic_flag(self, capsys):
        assert main(["mdtest", "--nodes", "1",
                     "--files-per-rank", "2", "--procs-per-node", "1",
                     "--analytic"]) == 0
        assert "[analytic]" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["fig8", "--nodes", "2",
                     "--files-per-rank", "4", "--procs-per-node", "2",
                     "--systems", "gpfs", "xfs"]) == 0
        out = capsys.readouterr().out
        assert "Fig 8" in out

    def test_fig9(self, capsys):
        assert main(["fig9", "--nodes", "2",
                     "--files-per-rank", "4", "--procs-per-node", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig 9a" in out and "Fig 9b" in out

    def test_fig14(self, capsys):
        assert main(["fig14", "--epochs", "3"]) == 0
        out = capsys.readouterr().out
        assert "GPFS" in out and "sharded" in out

    def test_fig15(self, capsys):
        assert main(["fig15", "--nodes", "8", "--files", "2000"]) == 0
        assert "gini" in capsys.readouterr().out

    def test_train(self, capsys):
        assert main(["train", "--system", "hvac1", "--nodes", "2",
                     "--files-per-rank", "4", "--procs-per-node", "2"]) == 0
        out = capsys.readouterr().out
        assert "HVAC(1x1)" in out
        assert "hit rate" in out

    def test_train_bad_system(self):
        with pytest.raises(ValueError):
            main(["train", "--system", "tape", "--nodes", "2",
                  "--files-per-rank", "2", "--procs-per-node", "1"])


class TestReport:
    def test_analytic_only_report(self, capsys):
        assert main(["report", "--analytic-only", "--nodes", "2",
                     "--files-per-rank", "2", "--procs-per-node", "1"]) == 0
        out = capsys.readouterr().out
        for marker in ("Figs 3-4", "Figs 8-9", "Fig 14", "Fig 15",
                       "identical: True"):
            assert marker in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        assert main(["report", "--analytic-only", "--nodes", "2",
                     "--files-per-rank", "2", "--procs-per-node", "1",
                     "--output", str(target)]) == 0
        assert target.exists()
        assert "HVAC reproduction" in target.read_text()

    def test_full_report_small_scale(self, capsys):
        assert main(["report", "--nodes", "2",
                     "--files-per-rank", "3", "--procs-per-node", "2"]) == 0
        out = capsys.readouterr().out
        for marker in ("Fig 10", "Fig 11", "Fig 12", "Fig 13"):
            assert marker in out
