"""SIM010 fixture: event scheduling driven by set iteration.

The trigger order of the waiters — and therefore the heap insertion
sequence of everything they go on to schedule — is the set's hash
order, which PYTHONHASHSEED reshuffles between runs.
"""

waiters = set()


def flush(env):
    for evt in waiters:
        evt.succeed()
    spawned = [env.process(w) for w in waiters]
    return spawned
