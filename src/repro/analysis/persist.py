"""Result persistence: save any experiment result as JSON.

The figure drivers return small result objects (dataclasses or plain
classes with dict/list/ndarray fields); :func:`save_results` serializes
them losslessly enough for external plotting tools, and
:func:`load_results` round-trips into plain dicts.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

import numpy as np

__all__ = ["to_jsonable", "save_results", "load_results"]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert result objects to JSON-compatible values."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set)):
        return [to_jsonable(v) for v in obj]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if hasattr(obj, "__dict__"):
        return {
            k: to_jsonable(v)
            for k, v in vars(obj).items()
            if not k.startswith("_")
        }
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def save_results(obj: Any, path: str, label: str = "") -> None:
    """Write a result object (plus an optional label) to ``path``."""
    payload = {"label": label or type(obj).__name__, "data": to_jsonable(obj)}
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def load_results(path: str) -> dict:
    """Load a previously saved result into plain dicts/lists."""
    with open(path) as fh:
        return json.load(fh)
