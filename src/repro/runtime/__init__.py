"""Real-file HVAC runtime: threads as servers, directories as NVMe."""

from .client import RuntimeClient, RuntimeDeployment, interposed_open
from .server import RuntimeServer, ServerStats

__all__ = [
    "interposed_open",
    "RuntimeClient",
    "RuntimeDeployment",
    "RuntimeServer",
    "ServerStats",
]
