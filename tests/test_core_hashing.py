"""Unit + property tests for hash-based I/O redirection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConsistentHashPlacement,
    LocalityPlacement,
    ModuloPlacement,
    make_placement,
    placement_histogram,
)


class TestModuloPlacement:
    def test_home_in_range(self):
        p = ModuloPlacement(10)
        for i in range(100):
            assert 0 <= p.home(f"/d/f{i}") < 10

    def test_deterministic(self):
        p1, p2 = ModuloPlacement(16), ModuloPlacement(16)
        for i in range(50):
            assert p1.home(f"/f{i}") == p2.home(f"/f{i}")

    def test_replicas_distinct_and_ordered(self):
        p = ModuloPlacement(8, replication_factor=3)
        reps = p.replicas("/d/x")
        assert len(reps) == 3
        assert len(set(reps)) == 3
        assert reps[1] == (reps[0] + 1) % 8

    def test_single_server(self):
        p = ModuloPlacement(1)
        assert p.replicas("/any") == [0]

    def test_validation(self):
        with pytest.raises(ValueError):
            ModuloPlacement(0)
        with pytest.raises(ValueError):
            ModuloPlacement(4, replication_factor=5)
        with pytest.raises(ValueError):
            ModuloPlacement(4, replication_factor=0)

    def test_balanced_distribution(self):
        """Paper Fig 15: hash placement is near-uniform across servers."""
        n = 64
        p = ModuloPlacement(n)
        counts = placement_histogram(p, [f"/img/{i}.jpg" for i in range(64_000)])
        # every server within ±15% of ideal
        ideal = 64_000 / n
        assert counts.min() > ideal * 0.85
        assert counts.max() < ideal * 1.15


class TestConsistentHashPlacement:
    def test_home_in_range(self):
        p = ConsistentHashPlacement(10, vnodes=32)
        for i in range(100):
            assert 0 <= p.home(f"/d/f{i}") < 10

    def test_replicas_distinct(self):
        p = ConsistentHashPlacement(8, replication_factor=3, vnodes=16)
        reps = p.replicas("/d/x")
        assert len(set(reps)) == 3

    def test_minimal_movement_on_growth(self):
        """Adding a server must move only ~1/(n+1) of files."""
        paths = [f"/f{i}" for i in range(5000)]
        p8 = ConsistentHashPlacement(8, vnodes=64)
        p9 = ConsistentHashPlacement(9, vnodes=64)
        moved = sum(p8.home(x) != p9.home(x) for x in paths)
        # mod-N would move ~8/9 of files; consistent hashing ~1/9.
        assert moved / len(paths) < 0.25

    def test_mod_placement_moves_most_on_growth(self):
        paths = [f"/f{i}" for i in range(5000)]
        p8, p9 = ModuloPlacement(8), ModuloPlacement(9)
        moved = sum(p8.home(x) != p9.home(x) for x in paths)
        assert moved / len(paths) > 0.8

    def test_vnodes_validation(self):
        with pytest.raises(ValueError):
            ConsistentHashPlacement(4, vnodes=0)

    def test_reasonable_balance(self):
        p = ConsistentHashPlacement(16, vnodes=128)
        counts = placement_histogram(p, [f"/x/{i}" for i in range(32_000)])
        ideal = 32_000 / 16
        assert counts.min() > ideal * 0.6
        assert counts.max() < ideal * 1.5


class TestLocalityPlacement:
    def test_fully_local(self):
        p = LocalityPlacement(8, servers_per_node=2, local_fraction=1.0)
        for i in range(200):
            home = p.home(f"/f{i}", client=2)
            assert home // 2 == 2  # on the client's node

    def test_fully_remote(self):
        p = LocalityPlacement(8, servers_per_node=2, local_fraction=0.0)
        for i in range(200):
            home = p.home(f"/f{i}", client=1)
            assert home // 2 != 1

    def test_fraction_respected(self):
        p = LocalityPlacement(32, servers_per_node=1, local_fraction=0.25)
        local = sum(p.home(f"/f{i}", client=5) == 5 for i in range(8000))
        assert 0.21 < local / 8000 < 0.29

    def test_requires_client(self):
        p = LocalityPlacement(8, servers_per_node=2, local_fraction=0.5)
        with pytest.raises(ValueError):
            p.home("/f")

    def test_single_node_always_local(self):
        p = LocalityPlacement(2, servers_per_node=2, local_fraction=0.0)
        assert p.home("/f", client=0) in (0, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalityPlacement(8, servers_per_node=2, local_fraction=1.5)
        with pytest.raises(ValueError):
            LocalityPlacement(7, servers_per_node=2, local_fraction=0.5)


class TestFactory:
    def test_mod(self):
        assert isinstance(make_placement("mod", 4), ModuloPlacement)

    def test_consistent(self):
        assert isinstance(
            make_placement("consistent", 4), ConsistentHashPlacement
        )

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_placement("nope", 4)


class TestHistogram:
    def test_counts_sum_to_n_paths(self):
        p = ModuloPlacement(7)
        paths = [f"/f{i}" for i in range(100)]
        assert placement_histogram(p, paths).sum() == 100

    def test_byte_weighted(self):
        p = ModuloPlacement(3)
        paths, sizes = ["/a", "/b"], [10, 20]
        assert placement_histogram(p, paths, sizes).sum() == 30

    def test_length_mismatch(self):
        p = ModuloPlacement(3)
        with pytest.raises(ValueError):
            placement_histogram(p, ["/a"], [1, 2])


@given(
    n_servers=st.integers(min_value=1, max_value=64),
    repl=st.integers(min_value=1, max_value=4),
    path=st.text(min_size=1, max_size=64),
)
@settings(max_examples=100, deadline=None)
def test_property_mod_replicas_valid(n_servers, repl, path):
    repl = min(repl, n_servers)
    p = ModuloPlacement(n_servers, replication_factor=repl)
    reps = p.replicas(path)
    assert len(reps) == repl
    assert len(set(reps)) == repl
    assert all(0 <= r < n_servers for r in reps)


@given(
    n_servers=st.integers(min_value=1, max_value=32),
    repl=st.integers(min_value=1, max_value=3),
    path=st.text(min_size=1, max_size=64),
)
@settings(max_examples=50, deadline=None)
def test_property_consistent_replicas_valid(n_servers, repl, path):
    repl = min(repl, n_servers)
    p = ConsistentHashPlacement(n_servers, replication_factor=repl, vnodes=8)
    reps = p.replicas(path)
    assert len(set(reps)) == repl
    assert all(0 <= r < n_servers for r in reps)


@given(path=st.text(min_size=1, max_size=128))
@settings(max_examples=100, deadline=None)
def test_property_same_path_same_home(path):
    """Every client computes the same home — the no-metadata invariant."""
    p = ModuloPlacement(16)
    assert p.home(path, client=0) == p.home(path, client=7)
