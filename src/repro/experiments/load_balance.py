"""Figure 15: per-server file distribution vs the ideal CDF.

The paper plots, for each node count, the CDF of the per-server file
share under HVAC's hash placement against the ideal (perfectly uniform)
distribution, finding it "fairly well-balanced" with a little deviation
below 128 nodes attributable to random file sizes.

We reproduce both views: file-count balance (pure hash quality) and
byte balance (where the size skew the paper mentions shows up).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis import empirical_cdf, format_table, gini, load_imbalance
from ..cluster import ClusterSpec, SUMMIT
from ..core import make_placement, placement_histogram
from ..dl import DatasetSpec, IMAGENET21K, SyntheticDataset

__all__ = ["LoadBalanceResult", "load_balance"]


@dataclass
class LoadBalanceResult:
    """Per-node-count balance statistics + CDFs."""

    dataset_name: str
    node_counts: list[int]
    #: per node count: sorted per-server file counts (CDF x-axis)
    file_cdfs: dict[int, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    byte_cdfs: dict[int, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    gini_files: dict[int, float] = field(default_factory=dict)
    gini_bytes: dict[int, float] = field(default_factory=dict)
    imbalance_files: dict[int, float] = field(default_factory=dict)
    imbalance_bytes: dict[int, float] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            [
                n,
                self.gini_files[n],
                self.imbalance_files[n],
                self.gini_bytes[n],
                self.imbalance_bytes[n],
            ]
            for n in self.node_counts
        ]
        return format_table(
            ["nodes", "gini(files)", "max/mean(files)", "gini(bytes)", "max/mean(bytes)"],
            rows,
            title=(
                f"Fig 15 ({self.dataset_name}): per-server load balance "
                "under hash placement (0 gini / 1.0 max-mean = ideal)"
            ),
        )


def load_balance(
    node_counts: list[int],
    dataset_spec: DatasetSpec = IMAGENET21K,
    n_files: int = 100_000,
    instances_per_node: int = 1,
    hash_scheme: str = "mod",
    spec: ClusterSpec = SUMMIT,
    seed: int = 0,
) -> LoadBalanceResult:
    """Hash a sampled dataset over each allocation size, measure balance."""
    sample = min(n_files, dataset_spec.n_train_files)
    dataset, _ = SyntheticDataset.scaled(dataset_spec, sample, seed=seed)
    paths = dataset.paths()
    sizes = dataset.sizes
    result = LoadBalanceResult(
        dataset_name=dataset_spec.name, node_counts=list(node_counts)
    )
    for n_nodes in node_counts:
        n_servers = n_nodes * instances_per_node
        placement = make_placement(hash_scheme, n_servers)
        by_files = placement_histogram(placement, paths)
        by_bytes = placement_histogram(placement, paths, sizes)
        result.file_cdfs[n_nodes] = empirical_cdf(by_files / by_files.sum())
        result.byte_cdfs[n_nodes] = empirical_cdf(by_bytes / by_bytes.sum())
        result.gini_files[n_nodes] = gini(by_files)
        result.gini_bytes[n_nodes] = gini(by_bytes)
        result.imbalance_files[n_nodes] = load_imbalance(by_files)
        result.imbalance_bytes[n_nodes] = load_imbalance(by_bytes)
    return result
