"""Storage substrates: GPFS- and Lustre-like PFS, XFS-on-NVMe local FS."""

from .base import FileBackend, FileNotCached, OpenFile
from .gpfs import GPFS
from .localfs import LocalFS
from .lustre import Lustre, LustreSpec

__all__ = [
    "FileBackend",
    "FileNotCached",
    "GPFS",
    "LocalFS",
    "Lustre",
    "LustreSpec",
    "OpenFile",
]
