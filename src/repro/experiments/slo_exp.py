"""SLO scenario: the same epoch with and without a mid-epoch crash.

This is the telemetry subsystem's end-to-end driver (and the ``repro
slo`` CLI command).  It runs the resilience workload twice with a
:class:`~repro.obs.SpanRecorder` attached — once clean, once with a
crash landing ``fault_time`` seconds into the measured epoch — rolls
both span timelines into :class:`~repro.obs.SLOReport`\\ s over the
*same* absolute window grid, and renders the side-by-side degradation
dashboard: p50/p95/p99 read latency per client, degraded-read fraction
per window, and delivered bytes split across NVMe-local / remote-RPC /
PFS-fallback paths.

Because both runs share the seed and the warm phase, every divergence
in the dashboard is attributable to the injected fault.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..analysis import count_strip, degradation_dashboard
from ..cluster import ClusterSpec
from ..faults import FaultSchedule, crash
from ..obs import SLOReport, SpanRecorder, bucket_times, compute_slo
from .resilience import _build, _epoch, _fault_spec, _files

#: detector transition kinds, in lifecycle order (strip row order)
_DETECTOR_KINDS = ("suspect", "probation_expired", "reprobe_ok", "reprobe_fail")

__all__ = ["SLOScenarioResult", "slo_scenario"]


@dataclass
class SLOScenarioResult:
    """Baseline + faulted SLO reports over one shared window grid."""

    n_nodes: int
    n_files: int
    fault_time: float
    fault_node: int
    baseline: SLOReport
    faulted: SLOReport
    #: the raw span timelines, keyed by run label (JSONL export)
    recorders: dict[str, SpanRecorder]
    #: per-run ``(t, client_node, kind, server_id)`` failure-detector
    #: transitions, keyed by run label; same grid as the SLO windows
    detector_transitions: dict[str, list[tuple]]

    @property
    def labels(self) -> tuple[str, str]:
        return ("baseline", f"crash@{self.fault_time:g}s")

    def _detector_strips(self) -> str:
        """One count-strip per (run, transition kind) on the SLO window
        grid, so suspicion onset / probation expiry / re-probe outcomes
        line up column-for-column with the degraded-fraction rows."""
        rep = self.baseline  # both reports share the absolute grid
        rows: list[tuple[str, list[int]]] = []
        for label in self.labels:
            for kind in _DETECTOR_KINDS:
                times = [
                    t for t, _node, k, _sid
                    in self.detector_transitions.get(label, [])
                    if k == kind
                ]
                if not times:
                    continue
                rows.append((
                    f"{label}/{kind}",
                    bucket_times(times, rep.window, rep.t0, rep.t1),
                ))
        if not rows:
            return ""
        width = max(len(name) for name, _ in rows)
        lines = ["-- failure-detector transitions per window "
                 "(count; '+'=10+) --"]
        for name, counts in rows:
            lines.append(f"{name.ljust(width)} |{count_strip(counts)}|")
        return "\n".join(lines)

    def render(self) -> str:
        base_label, fault_label = self.labels
        dash = degradation_dashboard(
            {base_label: self.baseline, fault_label: self.faulted},
            title=(f"SLO degradation dashboard ({self.n_nodes} nodes, "
                   f"{self.n_files} files/epoch/node, "
                   f"crash node {self.fault_node})"),
        )
        strips = self._detector_strips()
        return dash + ("\n\n" + strips if strips else "")

    def write_artifacts(self, outdir: str) -> dict[str, str]:
        """Write ``dashboard.txt`` + one span-timeline JSONL per run;
        returns ``{artifact name: path}``."""
        os.makedirs(outdir, exist_ok=True)
        paths: dict[str, str] = {}
        dash = os.path.join(outdir, "dashboard.txt")
        with open(dash, "w", encoding="utf-8") as fh:
            fh.write(self.render() + "\n")
        paths["dashboard"] = dash
        for label, rec in self.recorders.items():
            safe = label.replace("@", "_at_").replace(".", "_")
            path = os.path.join(outdir, f"spans_{safe}.jsonl")
            rec.write_jsonl(path)
            paths[f"spans[{label}]"] = path
        return paths


def slo_scenario(
    n_nodes: int = 4,
    n_files: int = 32,
    file_size: int = 25_000,
    fault_time: float = 0.002,
    fault_node: int = 1,
    windows: int = 12,
    spec: ClusterSpec | None = None,
    seed: int = 0,
) -> SLOScenarioResult:
    """Run the baseline/crash pair and aggregate both into SLO windows.

    Each run: cold epoch to warm the cache (excluded from the SLO
    range), then the measured epoch, with the crash injected
    ``fault_time`` seconds in on the faulted run.  Windows are aligned
    to the measured epoch's start and sized so ``windows`` buckets
    cover the *slower* run — identical absolute buckets for both
    reports, which is what makes the dashboard rows comparable.
    """
    if n_nodes < 2:
        raise ValueError("slo_scenario needs >= 2 nodes (one to crash)")
    spec = _fault_spec(spec)
    files = _files(n_files, file_size)
    fault_node = fault_node % n_nodes

    def run(schedule: FaultSchedule | None):
        rec = SpanRecorder()
        env, dep, _ = _build(spec, n_nodes, seed, spans=rec)
        _epoch(env, dep, n_nodes, files)  # warm the cache
        t0 = env.now
        if schedule is not None:
            dep.inject(schedule)
        _epoch(env, dep, n_nodes, files)
        t1 = env.now
        transitions = sorted(
            (t, node, kind, sid)
            for node, cli in dep._clients.items()
            for t, kind, sid in cli.detector.transitions
        )
        dep.teardown()
        return rec, t0, t1, transitions

    rec_base, base_t0, base_t1, trans_base = run(None)
    rec_fault, fault_t0, fault_t1, trans_fault = run(
        FaultSchedule([crash(fault_time, fault_node)])
    )

    # Identical seeds + identical warm phases: both measured epochs
    # start at the same instant; the faulted one just ends later.
    origin = min(base_t0, fault_t0)
    horizon = max(base_t1, fault_t1)
    window = (horizon - origin) / windows

    result = SLOScenarioResult(
        n_nodes=n_nodes,
        n_files=n_files,
        fault_time=fault_time,
        fault_node=fault_node,
        baseline=compute_slo(rec_base, window, origin=origin, horizon=horizon),
        faulted=compute_slo(rec_fault, window, origin=origin, horizon=horizon),
        recorders={},
        detector_transitions={},
    )
    base_label, fault_label = result.labels
    result.recorders = {base_label: rec_base, fault_label: rec_fault}
    result.detector_transitions = {
        base_label: trans_base, fault_label: trans_fault
    }
    return result
