"""The ``LD_PRELOAD`` interposition shim (paper §III-F).

HVAC's portability story: set two environment variables —

* ``LD_PRELOAD=libhvac_client.so``
* ``HVAC_DATASET_DIR=/gpfs/.../dataset``

— and every ``open/read/close`` the DL framework issues under the
dataset directory is transparently redirected to the HVAC client, while
all other I/O passes through untouched.  No application or file-system
change.

:class:`Interposition` reproduces that contract over the virtual POSIX
layer: it installs a redirect hook on a :class:`ProcessView` that
matches the dataset prefix and hands matching calls to that node's
:class:`~repro.core.client.HVACClient`.  ``preload`` / ``unload`` model
setting and clearing ``LD_PRELOAD`` for a process.
"""

from __future__ import annotations

from typing import Optional

from ..core.client import HVACClient
from ..storage.base import FileBackend
from .vfs import ProcessView

__all__ = ["Interposition", "interpose_view", "unload"]


class Interposition:
    """One process's preloaded HVAC client shim."""

    def __init__(self, dataset_dir: str, client: HVACClient):
        if not dataset_dir.startswith("/"):
            raise ValueError("HVAC_DATASET_DIR must be absolute")
        self.dataset_dir = dataset_dir.rstrip("/")
        self.client = client
        self.intercepted_calls = 0
        self.passthrough_calls = 0

    def matches(self, path: str) -> bool:
        return path == self.dataset_dir or path.startswith(self.dataset_dir + "/")

    def __call__(self, path: str) -> Optional[FileBackend]:
        """The redirect hook: HVAC client for dataset paths, else None."""
        if self.matches(path):
            self.intercepted_calls += 1
            return self.client
        self.passthrough_calls += 1
        return None


def interpose_view(
    view: ProcessView, dataset_dir: str, client: HVACClient
) -> Interposition:
    """Preload the shim into a process (sets the redirect hook).

    Raises if another shim is already preloaded — stacking interposers
    is exactly the kind of LD_PRELOAD fragility HVAC avoids relying on.
    """
    if view.redirect is not None:
        raise RuntimeError("process already has an interposition library loaded")
    shim = Interposition(dataset_dir, client)
    view.redirect = shim
    return shim


def unload(view: ProcessView) -> None:
    """Clear the shim (unset LD_PRELOAD for subsequent calls)."""
    view.redirect = None
