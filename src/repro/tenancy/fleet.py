"""Fleet-side tenancy wiring over one HVAC deployment.

:class:`TenantFleet` splits multi-tenant state along the line the
subsystem exists to draw: *per-job* client state (detector evidence,
retry budgets, RNG streams — one :class:`~repro.core.client.HVACClient`
per (node, tenant)) stays with the deployment's keyed client factory,
while *fleet-wide* state (the :class:`~repro.tenancy.quota.QuotaLedger`
and one :class:`~repro.tenancy.arbiter.TenantCacheArbiter` per server
cache, all sharing that ledger) lives here.  Tenants register lazily —
the arrival process calls :meth:`add_tenant` as jobs enter — and every
registration fans out to all per-cache arbiters, so victim selection
and quota enforcement see one consistent tenant table everywhere.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .admission import AdmissionController
from .arbiter import TenantCacheArbiter
from .quota import QuotaLedger
from .tenant import TenantSpec

__all__ = ["TenantFleet"]


class TenantFleet:
    """Quota ledger + per-cache arbiters + keyed clients for one fleet."""

    def __init__(self, dep, mode: str = "shared", tenants: Iterable[TenantSpec] = ()):
        self.dep = dep
        self.env = dep.env
        self.mode = mode
        self.tenants: dict[int, TenantSpec] = {}
        self.ledger = QuotaLedger(self.env)
        self.arbiters: list[TenantCacheArbiter] = []
        for server in dep.servers:
            arb = TenantCacheArbiter(mode, self.ledger, {})
            arb.attach(server.cache)
            self.arbiters.append(arb)
        for spec in tenants:
            self.add_tenant(spec)

    @property
    def capacity_bytes(self) -> int:
        """Aggregate cache bytes across every server of the fleet."""
        return sum(s.cache.capacity_bytes for s in self.dep.servers)

    def add_tenant(self, spec: TenantSpec) -> None:
        """Register a tenant everywhere (idempotent, arrival-ordered)."""
        if spec.tenant_id in self.tenants:
            return
        self.tenants[spec.tenant_id] = spec
        self.ledger.add_tenant(spec)
        for arb in self.arbiters:
            arb.add_tenant(spec.tenant_id, spec.weight)

    def client(self, node_id: int, tenant_id: int):
        """The (node, tenant) client — per-job state, built on demand."""
        return self.dep.client(node_id, tenant=tenant_id)

    def make_admission(
        self,
        overcommit: float = 1.0,
        queue_limit: int = 2,
        degrade_ok: bool = True,
    ) -> AdmissionController:
        """An admission controller sized to this fleet's cache bytes."""
        return AdmissionController(
            self.env,
            self.capacity_bytes,
            overcommit=overcommit,
            queue_limit=queue_limit,
            degrade_ok=degrade_ok,
        )

    # -- fleet-wide queries -------------------------------------------------
    def resident_bytes(self, tenant_id: int) -> int:
        """Bytes ``tenant_id`` has cached across every server."""
        return self.ledger.used_bytes(tenant_id)

    def resident_files(self, tenant_id: int) -> int:
        return self.ledger.used_files(tenant_id)

    def occupancy(self) -> dict[int, int]:
        """Per-tenant resident bytes (the partition table the report prints)."""
        return {tid: self.ledger.used_bytes(tid) for tid in sorted(self.tenants)}

    def tenant_client_keys(self) -> list[tuple[int, int]]:
        """(node, tenant) keys of every tenant client built so far."""
        return sorted(k for k in self.dep._clients if isinstance(k, tuple))
