"""Common storage interfaces.

Every storage backend (GPFS, XFS-on-NVMe, HVAC-backed mounts) exposes
the same transaction the paper measures everywhere: the POSIX
``<open, read, close>`` triple on whole files (§II-C: "both file type
I/Os follow a transaction comprising of <open-read-close> operations").

Backends are simulation objects; their methods are generators that take
simulated time.  ``client_node`` identifies which compute node issues
the I/O so per-node links and devices contend correctly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Generator

__all__ = ["FileBackend", "OpenFile", "FileNotCached"]


@dataclass(slots=True)
class OpenFile:
    """A live file handle returned by :meth:`FileBackend.open`.

    Slotted: one handle per intercepted <open, read, close> triple, so
    the epoch loop allocates these at event rate (PERF101)."""

    path: str
    size: int
    backend: "FileBackend"
    client_node: int
    offset: int = 0
    closed: bool = False


class FileNotCached(Exception):
    """Backend does not hold the requested file (cache miss signal)."""


class FileBackend(abc.ABC):
    """Abstract open/read/close storage backend."""

    @abc.abstractmethod
    def open(self, path: str, size: int, client_node: int) -> Generator:
        """Open ``path``; returns an :class:`OpenFile` (event-valued)."""

    @abc.abstractmethod
    def read(self, handle: OpenFile, nbytes: int) -> Generator:
        """Read ``nbytes`` at the handle's offset; returns bytes read."""

    @abc.abstractmethod
    def close(self, handle: OpenFile) -> Generator:
        """Close the handle."""

    def read_file(self, path: str, size: int, client_node: int) -> Generator:
        """The canonical whole-file open-read-close transaction."""
        handle = yield from self.open(path, size, client_node)
        yield from self.read(handle, size)
        yield from self.close(handle)
        return size
