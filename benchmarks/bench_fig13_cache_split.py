"""Fig 13: impact of local/remote cache split on HVAC(1×1).

The paper manually pins L% of the dataset to the training node and R%
to remote nodes and observes a negligible difference — Mercury bulk
over Infiniband makes remote NVMe nearly as fast as local.
"""

import pytest

from repro.dl import IMAGENET21K, RESNET50
from repro.experiments import cache_split

from conftest import BENCH_SCALE, bench_scale

SPLITS = (1.0, 0.75, 0.5, 0.25, 0.0)


def _run():
    n_nodes = 512 if BENCH_SCALE == "paper" else 16
    return cache_split(
        RESNET50,
        IMAGENET21K,
        bench_scale(),
        n_nodes=n_nodes,
        batch_size=80,
        local_fractions=SPLITS,
    )


@pytest.mark.benchmark(group="fig13")
def test_fig13_cache_split(benchmark, capsys):
    res = benchmark.pedantic(_run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(res.render())
        print(f"max relative spread across splits: "
              f"{100 * res.max_relative_spread():.1f}%")

    # The paper's finding: negligible difference across splits.
    assert res.max_relative_spread() < 0.10
