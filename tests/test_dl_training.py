"""Integration tests for the distributed training simulation."""

import pytest

from repro.baselines import GPFSSetup, HVACSetup, XFSSetup
from repro.cluster import TESTING
from repro.dl import (
    IMAGENET21K,
    RESNET50,
    SyntheticDataset,
    TrainingConfig,
    TrainingJob,
    TrainingResult,
)
from repro.simcore import Environment


def run_job(setup, n_nodes=2, n_files=64, epochs=2, spec=TESTING, **cfg_kw):
    ds, factor = SyntheticDataset.scaled(IMAGENET21K.scaled_to(10_000), n_files)
    env = Environment()
    handle = setup.build(env, spec, n_nodes, ds)
    defaults = dict(
        model=RESNET50,
        dataset=ds,
        n_nodes=n_nodes,
        procs_per_node=2,
        batch_size=4,
        epochs=epochs,
        scale_factor=factor,
    )
    defaults.update(cfg_kw)
    config = TrainingConfig(**defaults)
    job = TrainingJob(env, config, handle.backend_for_node, handle.label)
    result = job.run()
    return result, handle


class TestTrainingConfig:
    def test_validation(self):
        ds, _ = SyntheticDataset.scaled(IMAGENET21K, 10)
        with pytest.raises(ValueError):
            TrainingConfig(model=RESNET50, dataset=ds, n_nodes=0)
        with pytest.raises(ValueError):
            TrainingConfig(model=RESNET50, dataset=ds, n_nodes=1, epochs=0)
        with pytest.raises(ValueError):
            TrainingConfig(model=RESNET50, dataset=ds, n_nodes=1, prefetch_depth=0)

    def test_effective_batch_default(self):
        ds, _ = SyntheticDataset.scaled(IMAGENET21K, 10)
        cfg = TrainingConfig(model=RESNET50, dataset=ds, n_nodes=1)
        assert cfg.effective_batch_size == RESNET50.default_batch_size

    def test_n_ranks(self):
        ds, _ = SyntheticDataset.scaled(IMAGENET21K, 10)
        cfg = TrainingConfig(model=RESNET50, dataset=ds, n_nodes=4, procs_per_node=6)
        assert cfg.n_ranks == 24


class TestTrainingResult:
    def make(self, times):
        r = TrainingResult(config_label="x", system_label="y")
        r.epoch_times = times
        return r

    def test_derived_views(self):
        r = self.make([10.0, 2.0, 3.0])
        assert r.first_epoch == 10.0
        assert r.best_random_epoch == 2.0
        assert r.avg_epoch == 5.0
        assert r.total_time == 15.0
        assert r.total_minutes == 0.25

    def test_extrapolate_exact_when_covered(self):
        r = self.make([10.0, 2.0])
        assert r.extrapolate_total(1) == 10.0
        assert r.extrapolate_total(2) == 12.0

    def test_extrapolate_beyond(self):
        r = self.make([10.0, 2.0])
        assert r.extrapolate_total(10) == pytest.approx(10.0 + 9 * 2.0)

    def test_extrapolate_validation(self):
        with pytest.raises(ValueError):
            self.make([1.0]).extrapolate_total(0)


class TestTrainingRuns:
    def test_epoch_count(self):
        res, _ = run_job(GPFSSetup(), epochs=3)
        assert len(res.epoch_times) == 3
        assert all(t > 0 for t in res.epoch_times)

    def test_scale_factor_multiplies_times(self):
        res1, _ = run_job(GPFSSetup(), epochs=1, scale_factor=1.0)
        res2, _ = run_job(GPFSSetup(), epochs=1, scale_factor=10.0)
        assert res2.epoch_times[0] == pytest.approx(10 * res1.epoch_times[0])

    def test_hvac_warm_epoch_faster_than_cold(self):
        res, handle = run_job(HVACSetup(1), epochs=3, io_only=True)
        assert res.epoch_times[1] < res.epoch_times[0]
        assert handle.deployment.hit_rate() > 0

    def test_hvac_caches_whole_dataset(self):
        res, handle = run_job(HVACSetup(1), n_files=64, epochs=1)
        # drop_remainder may skip a few tail files
        assert handle.deployment.total_cached_files >= 60

    def test_deterministic(self):
        r1, _ = run_job(GPFSSetup(), epochs=2)
        r2, _ = run_job(GPFSSetup(), epochs=2)
        assert r1.epoch_times == r2.epoch_times

    def test_io_only_faster_than_with_compute(self):
        r_io, _ = run_job(XFSSetup(), epochs=1, io_only=True)
        r_full, _ = run_job(XFSSetup(), epochs=1)
        assert r_io.epoch_times[0] < r_full.epoch_times[0]

    def test_sim_batch_size_preserves_totals_when_synchronous(self):
        """With prefetch_depth=1, chunking must not change epoch time
        beyond second-order queueing effects: per-sample costs are
        identical, but burst length at the shared NVMe bandwidth server
        shifts waiting times slightly."""
        r_a, _ = run_job(XFSSetup(), epochs=1, batch_size=8, sim_batch_size=8)
        r_b, _ = run_job(XFSSetup(), epochs=1, batch_size=8, sim_batch_size=2)
        assert r_a.epoch_times[0] == pytest.approx(r_b.epoch_times[0], rel=0.05)

    def test_prefetch_overlaps_io_and_compute(self):
        r_sync, _ = run_job(GPFSSetup(), epochs=1, prefetch_depth=1)
        r_pre, _ = run_job(GPFSSetup(), epochs=1, prefetch_depth=4)
        assert r_pre.epoch_times[0] <= r_sync.epoch_times[0]

    def test_more_nodes_faster_epoch_when_unsaturated(self):
        r2, _ = run_job(XFSSetup(), n_nodes=2, n_files=128, epochs=1)
        r8, _ = run_job(XFSSetup(), n_nodes=8, n_files=128, epochs=1)
        assert r8.epoch_times[0] < r2.epoch_times[0]

    def test_gpfs_saturation_flattens_scaling(self):
        """Once the MDS ceiling binds, more nodes stop helping (Fig 8)."""
        spec = TESTING.with_pfs(metadata_ops_per_sec=200.0, n_metadata_servers=1)
        r2, _ = run_job(GPFSSetup(), n_nodes=2, n_files=128, epochs=1,
                        spec=spec, io_only=True)
        r8, _ = run_job(GPFSSetup(), n_nodes=8, n_files=128, epochs=1,
                        spec=spec, io_only=True)
        # 4× the nodes buys well under 4× the speed.
        assert r2.epoch_times[0] / r8.epoch_times[0] < 2.0

    def test_shuffle_seed_changes_order_not_magnitude(self):
        r_a, _ = run_job(XFSSetup(), epochs=1, shuffle_seed=0)
        r_b, _ = run_job(XFSSetup(), epochs=1, shuffle_seed=1)
        assert r_a.epoch_times[0] == pytest.approx(r_b.epoch_times[0], rel=0.05)
