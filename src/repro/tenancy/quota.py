"""Fleet-wide per-tenant quota accounting.

One :class:`QuotaLedger` per fleet tracks the bytes and file count each
tenant has resident across *every* server cache.  Charges and releases
land from whichever server's data mover happens to insert or evict, so
each tenant's counters are genuinely shared state — exactly the kind
the race sanitizer exists for.  Every tenant's counter pair is one
named cell, ``tenancy.quota.t<j>`` (the byte budget couples the two:
an admission check reads both), noted on every read and write so
``--races`` catches any refactor that lets two same-timestamp events
touch one tenant's quota without a causal order.

Quotas meter *device residency*, not raw data: under a compressed
cache tier (``compression_ratio < 1``, see
:class:`~repro.core.CacheManager`) the insert path charges the stored
(compressed) size, so a tenant's quota buys proportionally more raw
bytes — the same accounting the arbiter's slab/watermark math uses.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..simcore import Environment, cell_name

from .tenant import TenantSpec

__all__ = ["QuotaLedger"]


class QuotaLedger:
    """Per-tenant cached-byte/file accounting with quota enforcement."""

    __slots__ = (
        "env",
        "_quota_bytes",
        "_quota_files",
        "_used_bytes",
        "_used_files",
        "_refusals",
        "_cells",
    )

    def __init__(self, env: Environment, tenants: Iterable[TenantSpec] = ()):
        self.env = env
        self._quota_bytes: dict[int, Optional[int]] = {}
        self._quota_files: dict[int, Optional[int]] = {}
        self._used_bytes: dict[int, int] = {}
        self._used_files: dict[int, int] = {}
        self._refusals: dict[int, int] = {}
        # Cell names are memoized at registration: would_exceed runs on
        # the per-miss insert path and must not rebuild labels (PERF103).
        self._cells: dict[int, str] = {}
        for spec in tenants:
            self.add_tenant(spec)

    def add_tenant(self, spec: TenantSpec) -> None:
        """Register a tenant (idempotent; arrivals register lazily)."""
        tid = spec.tenant_id
        if tid in self._cells:
            return
        cell = self._cells[tid] = cell_name("tenancy.quota", "t", tid)
        # Registration zero-initializes the tenant's counter pair — a
        # genuine cell write: a lazy arrival racing a charge on the same
        # tenant would silently drop the charge.
        self.env.note_access(cell, "w", tag=("register", tid))
        self._quota_bytes[tid] = spec.quota_bytes
        self._quota_files[tid] = spec.quota_files
        self._used_bytes[tid] = 0
        self._used_files[tid] = 0
        self._refusals[tid] = 0

    def knows(self, tenant: int) -> bool:
        return tenant in self._cells

    # -- queries -----------------------------------------------------------
    def used_bytes(self, tenant: int) -> int:
        return self._used_bytes.get(tenant, 0)

    def used_files(self, tenant: int) -> int:
        return self._used_files.get(tenant, 0)

    def refusals(self, tenant: int) -> int:
        return self._refusals.get(tenant, 0)

    def would_exceed(self, tenant: int, nbytes: int) -> bool:
        """Would caching ``nbytes`` more push ``tenant`` past a quota?"""
        cell = self._cells.get(tenant)
        if cell is None:
            return False
        self.env.note_access(cell, "r")
        qb = self._quota_bytes[tenant]
        if qb is not None and self._used_bytes[tenant] + nbytes > qb:
            return True
        qf = self._quota_files[tenant]
        return qf is not None and self._used_files[tenant] + 1 > qf

    # -- mutation ------------------------------------------------------------
    def charge(self, tenant: int, nbytes: int) -> None:
        """Account one cached file of ``nbytes`` to ``tenant``."""
        cell = self._cells.get(tenant)
        if cell is None:
            return
        self.env.note_access(cell, "w")
        self._used_bytes[tenant] += nbytes
        self._used_files[tenant] += 1

    def release(self, tenant: int, nbytes: int) -> None:
        """Un-account one evicted file of ``nbytes``."""
        cell = self._cells.get(tenant)
        if cell is None:
            return
        self.env.note_access(cell, "w")
        self._used_bytes[tenant] -= nbytes
        self._used_files[tenant] -= 1

    def refuse(self, tenant: int) -> None:
        """Count one quota-refused insert (aggregate tally; increments
        commute, so this is deliberately not a cell write)."""
        if tenant in self._refusals:
            self._refusals[tenant] += 1
