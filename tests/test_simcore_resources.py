"""Unit tests for Resource / PriorityResource / Container."""

import pytest

from repro.simcore import Container, Environment, PriorityResource, Resource, SimulationError


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    grants = []

    def user(i):
        with res.request() as req:
            yield req
            grants.append((env.now, i))
            yield env.timeout(10)

    for i in range(3):
        env.process(user(i))
    env.run()
    # Two immediately, third at t=10 when one releases.
    assert grants == [(0.0, 0), (0.0, 1), (10.0, 2)]


def test_resource_fifo_queueing():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(i):
        with res.request() as req:
            yield req
            order.append(i)
            yield env.timeout(1)

    for i in range(5):
        env.process(user(i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_count_and_queued():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(5)

    def waiter():
        with res.request() as req:
            yield req

    env.process(holder())
    env.process(waiter())
    env.run(until=1)
    assert res.count == 1
    assert res.queued == 1
    env.run()
    assert res.count == 0


def test_explicit_release():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def a():
        req = res.request()
        yield req
        yield env.timeout(2)
        res.release(req)
        log.append(("a-released", env.now))
        yield env.timeout(10)

    def b():
        yield env.timeout(1)
        req = res.request()
        yield req
        log.append(("b-granted", env.now))

    env.process(a())
    env.process(b())
    env.run()
    assert log == [("a-released", 2.0), ("b-granted", 2.0)]


def test_cancel_waiting_request_leaves_queue():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def impatient():
        req = res.request()
        # Change of heart before grant.
        yield env.timeout(1)
        req.cancel()

    env.process(holder())
    env.process(impatient())
    env.run(until=2)
    assert res.queued == 0


def test_priority_resource_orders_waiters():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(5)

    def user(i, prio):
        yield env.timeout(1)  # arrive while holder active
        with res.request(priority=prio) as req:
            yield req
            order.append(i)
            yield env.timeout(1)

    env.process(holder())
    env.process(user("low", 10))
    env.process(user("high", -1))
    env.process(user("mid", 3))
    env.run()
    assert order == ["high", "mid", "low"]


def test_priority_ties_fifo():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder():
        with res.request(priority=0) as r:
            yield r
            yield env.timeout(2)

    def user(i):
        yield env.timeout(1)
        with res.request(priority=5) as r:
            yield r
            order.append(i)

    env.process(holder())
    for i in range(4):
        env.process(user(i))
    env.run()
    assert order == [0, 1, 2, 3]


def test_container_put_get():
    env = Environment()
    tank = Container(env, capacity=100, init=50)
    log = []

    def producer():
        yield tank.put(30)
        log.append(("put", env.now, tank.level))

    def consumer():
        yield env.timeout(1)
        yield tank.get(70)
        log.append(("got", env.now, tank.level))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [("put", 0.0, 80.0), ("got", 1.0, 10.0)]


def test_container_get_blocks_until_available():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    log = []

    def consumer():
        yield tank.get(10)
        log.append(env.now)

    def producer():
        yield env.timeout(5)
        yield tank.put(10)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert log == [5.0]


def test_container_put_blocks_when_full():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    log = []

    def producer():
        yield tank.put(5)
        log.append(env.now)

    def consumer():
        yield env.timeout(3)
        yield tank.get(6)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert log == [3.0]


def test_container_bypass_no_convoy():
    """A blocked large get must not starve a satisfiable small get."""
    env = Environment()
    tank = Container(env, capacity=100, init=5)
    log = []

    def big():
        yield tank.get(50)
        log.append(("big", env.now))

    def small():
        yield env.timeout(1)
        yield tank.get(5)
        log.append(("small", env.now))

    env.process(big())
    env.process(small())
    env.run(until=2)
    assert ("small", 1.0) in log
    assert all(tag != "big" for tag, _ in log)


def test_container_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Container(env, capacity=0)
    with pytest.raises(SimulationError):
        Container(env, capacity=5, init=10)
    tank = Container(env, capacity=5)
    with pytest.raises(SimulationError):
        tank.put(-1)
    with pytest.raises(SimulationError):
        tank.get(-1)
