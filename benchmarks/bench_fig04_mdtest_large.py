"""Fig 4: MDTest 8 MB open-read-close transactions/s, GPFS vs XFS-on-NVMe.

Large files shift GPFS from metadata-bound to bandwidth-bound: the
ceiling becomes aggregate PFS bandwidth (2.5 TB/s) while XFS-on-NVMe
(22.5 TB/s aggregate at 4,096 nodes) keeps scaling.
"""

import pytest

from repro.experiments import LARGE_FILE, mdtest_scaling, mdtest_scaling_analytic

from conftest import BENCH_SCALE, bench_nodes, paper_nodes


def _run():
    # Large files mean few transactions, so the DES can afford node
    # counts that reach GPFS's bandwidth saturation (≈455-node
    # crossover): the ratio trend needs a point near it.
    nodes = bench_nodes() if BENCH_SCALE == "paper" else [8, 64, 256]
    des = mdtest_scaling(LARGE_FILE, nodes, ranks_per_node=4, files_per_rank=4)
    analytic = mdtest_scaling_analytic(LARGE_FILE, paper_nodes())
    return des, analytic


@pytest.mark.benchmark(group="fig04")
def test_fig04_mdtest_large_files(benchmark, capsys):
    des, analytic = benchmark.pedantic(_run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(des.render())
        print()
        print(analytic.render() + "   [analytic, full sweep]")

    # Bandwidth regime: GPFS tx ceiling ≈ 2.5 TB/s ÷ 8 MiB, flat at scale.
    g = analytic.tx_per_sec["GPFS"]
    assert g[-1] == pytest.approx(2.51e12 / LARGE_FILE, rel=0.05)
    assert g[-1] == pytest.approx(g[-2], rel=0.05)
    # XFS aggregate at 4,096-node extrapolation ≈ 22.5 TB/s (paper §II-C):
    x_per_node_bw = analytic.tx_per_sec["XFS-on-NVMe"][-1] * LARGE_FILE / 1024
    assert x_per_node_bw * 4096 == pytest.approx(22.5e12, rel=0.1)
    # The DES trend: the XFS/GPFS ratio grows with node count (linear vs
    # shared ceiling).  The absolute crossover sits near 455 nodes
    # (2.5 TB/s ÷ 5.5 GB/s per node), so small sweeps can start below 1.
    ratios = des.ratio()
    assert ratios[-1] > ratios[0]
    # And at 4,096 nodes the analytic ratio is the paper's ≈9×
    # (22.5 TB/s aggregate NVMe vs 2.5 TB/s GPFS, §II-C).
    from repro.cluster import SUMMIT
    from repro.dl import IMAGENET21K, RESNET50
    from repro.model import AnalyticModel

    m4096 = AnalyticModel(SUMMIT, RESNET50, IMAGENET21K, 4096)
    full_ratio = (m4096.predict_mdtest("xfs", LARGE_FILE)
                  / m4096.predict_mdtest("gpfs", LARGE_FILE))
    assert full_ratio == pytest.approx(22.5 / 2.5, rel=0.15)
