"""Figures 3 & 4: MDTest transactions/second, GPFS vs XFS-on-NVMe.

Reproduces the motivation experiment: 32 KB files expose the PFS
metadata ceiling; 8 MB files shift the constraint to bandwidth.  The
node-local XFS scales linearly in both regimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import format_series
from ..cluster import ClusterSpec, KiB, MiB, SUMMIT
from ..dl import IMAGENET21K, RESNET50, SyntheticDataset
from ..model import AnalyticModel
from ..simcore import Environment
from ..workloads import MDTestConfig, run_mdtest
from .harness import resolve_setup

__all__ = ["MDTestScalingResult", "mdtest_scaling", "mdtest_scaling_analytic"]

SMALL_FILE = 32 * KiB  # Fig 3
LARGE_FILE = 8 * MiB  # Fig 4


@dataclass
class MDTestScalingResult:
    """tx/s per system across the node sweep."""

    file_size: int
    node_counts: list[int]
    tx_per_sec: dict[str, list[float]] = field(default_factory=dict)

    def ratio(self, a: str = "XFS-on-NVMe", b: str = "GPFS") -> list[float]:
        return [
            x / y for x, y in zip(self.tx_per_sec[a], self.tx_per_sec[b])
        ]

    def render(self) -> str:
        fig = "Fig 3" if self.file_size < MiB else "Fig 4"
        return format_series(
            "nodes",
            self.node_counts,
            self.tx_per_sec,
            title=(
                f"{fig}: MDTest {self.file_size // 1024} KB "
                "open-read-close transactions/s"
            ),
        )


def mdtest_scaling(
    file_size: int,
    node_counts: list[int],
    spec: ClusterSpec = SUMMIT,
    ranks_per_node: int = 6,
    files_per_rank: int = 16,
    systems: tuple[str, ...] = ("gpfs", "xfs"),
) -> MDTestScalingResult:
    """Event-driven MDTest sweep."""
    result = MDTestScalingResult(file_size=file_size, node_counts=list(node_counts))
    for system in systems:
        setup = resolve_setup(system)
        series = []
        for n_nodes in node_counts:
            env = Environment()
            # MDTest pre-creates its tree; dataset object only sizes caches.
            dataset, _ = SyntheticDataset.scaled(IMAGENET21K, 1024)
            handle = setup.build(env, spec, n_nodes, dataset)
            cfg = MDTestConfig(
                n_nodes=n_nodes,
                ranks_per_node=ranks_per_node,
                file_size=file_size,
                files_per_rank=files_per_rank,
            )
            res = run_mdtest(env, cfg, handle.backend_for_node, handle.label)
            series.append(res.tx_per_sec)
            handle.teardown()
        result.tx_per_sec[setup.label] = series
    return result


def mdtest_scaling_analytic(
    file_size: int,
    node_counts: list[int],
    spec: ClusterSpec = SUMMIT,
    ranks_per_node: int = 6,
) -> MDTestScalingResult:
    """The same sweep from the closed-form model (instant, any scale)."""
    result = MDTestScalingResult(file_size=file_size, node_counts=list(node_counts))
    for system, label in (("gpfs", "GPFS"), ("xfs", "XFS-on-NVMe")):
        series = []
        for n_nodes in node_counts:
            model = AnalyticModel(spec, RESNET50, IMAGENET21K, n_nodes)
            series.append(model.predict_mdtest(system, file_size, ranks_per_node))
        result.tx_per_sec[label] = series
    return result
