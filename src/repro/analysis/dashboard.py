"""SLO degradation dashboard: labeled runs, side by side.

Renders one or more :class:`~repro.obs.SLOReport`\\ s (e.g. a no-fault
baseline next to a crash-at-t run of the same scenario) as plain-text
tables plus a per-window degraded-fraction strip, so a fault's effect on
read SLOs is visible at a glance: tail latencies shift, the degraded
fraction spikes in the windows after the fault, and delivered bytes
migrate from the NVMe-local / remote-RPC paths onto the PFS fallback.

Both reports must be computed over the same absolute ``[t0, t1)`` range
and window width (:func:`~repro.obs.compute_slo` aligns windows to
``origin`` for exactly this reason) — otherwise rows aren't comparable
and the strip's columns drift.
"""

from __future__ import annotations

from typing import Mapping

from .tables import format_table

__all__ = ["count_strip", "degradation_dashboard", "degradation_strip"]

#: ten-level intensity ramp for the degraded-fraction strip
_RAMP = " .:-=+*#%@"


def degradation_strip(fractions: list[float]) -> str:
    """One character per window: ' ' = clean, '@' = fully degraded."""
    out = []
    for f in fractions:
        f = min(1.0, max(0.0, f))
        out.append(_RAMP[min(len(_RAMP) - 1, int(f * len(_RAMP)))])
    return "".join(out)


def count_strip(counts: list[int]) -> str:
    """One character per window for point-event counts: ' ' = none,
    '1'–'9' literal, '+' = ten or more.  Lines up under
    :func:`degradation_strip` when both use the same window grid
    (see :func:`repro.obs.bucket_times`)."""
    out = []
    for n in counts:
        if n <= 0:
            out.append(" ")
        elif n < 10:
            out.append(str(n))
        else:
            out.append("+")
    return "".join(out)


def _totals_rows(reports: Mapping[str, object]) -> list[list]:
    rows = []
    for label, report in reports.items():
        t = report.totals
        rows.append([
            label,
            t.n_reads,
            t.p50,
            t.p95,
            t.p99,
            f"{t.degraded_fraction:.1%}",
            t.bytes_by_path["local"],
            t.bytes_by_path["remote"],
            t.bytes_by_path["pfs"],
        ])
    return rows


def _client_rows(report) -> list[list]:
    rows = []
    for cid in sorted(report.clients):
        c = report.clients[cid]
        rows.append([
            cid,
            c.n_reads,
            c.p50,
            c.p95,
            c.p99,
            f"{c.degraded_fraction:.1%}",
            c.bytes_by_path["local"],
            c.bytes_by_path["remote"],
            c.bytes_by_path["pfs"],
        ])
    return rows


def degradation_dashboard(
    reports: Mapping[str, object],
    title: str = "SLO degradation dashboard",
    per_client: bool = True,
) -> str:
    """Render labeled :class:`~repro.obs.SLOReport`\\ s side by side.

    ``reports`` maps a run label (``"baseline"``, ``"crash@0.01"``, …)
    to its report; iteration order is display order.
    """
    if not reports:
        raise ValueError("at least one report is required")
    blocks: list[str] = [f"== {title} =="]

    blocks.append(format_table(
        ["run", "reads", "p50 (s)", "p95 (s)", "p99 (s)", "degraded",
         "B local", "B remote", "B pfs"],
        _totals_rows(reports),
        title="-- read SLOs, whole run --",
        float_fmt="{:.3e}",
    ))

    if per_client:
        for label, report in reports.items():
            blocks.append(format_table(
                ["client", "reads", "p50 (s)", "p95 (s)", "p99 (s)",
                 "degraded", "B local", "B remote", "B pfs"],
                _client_rows(report),
                title=f"-- per-client SLOs [{label}] --",
                float_fmt="{:.3e}",
            ))

    strip_lines = ["-- degraded-read fraction per window "
                   "(' '=0% … '@'=100%) --"]
    width = max(len(label) for label in reports)
    for label, report in reports.items():
        fracs = [w.degraded_fraction for w in report.totals.windows]
        strip_lines.append(f"{label.ljust(width)} |{degradation_strip(fracs)}|")
    any_report = next(iter(reports.values()))
    strip_lines.append(
        f"{''.ljust(width)}  t=[{any_report.t0:.4g}, {any_report.t1:.4g}) s, "
        f"window={any_report.window:.4g} s"
    )
    blocks.append("\n".join(strip_lines))
    return "\n\n".join(blocks)
