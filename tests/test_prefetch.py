"""Clairvoyant prefetch: planner identity, look-ahead staging, faults,
the compressed cache tier, and the reactive-baseline starvation fix."""

import numpy as np
import pytest

from repro.cluster import Allocation, NVMeDevice, NVMeSpec, TESTING
from repro.core import CacheManager, CachePrefetcher, HVACDeployment, make_policy
from repro.dl import SyntheticDataset, make_epoch_plan
from repro.dl.dataset import DatasetSpec
from repro.prefetch import ClairvoyantPlanner, LookaheadScheduler
from repro.simcore import AllOf, Environment, EventTrace
from repro.storage import GPFS, LocalFS


def dataset(n_files=24, size=20_000, seed=3):
    return SyntheticDataset(
        DatasetSpec(
            name="pftest",
            n_train_files=n_files,
            n_valid_files=1,
            mean_file_bytes=size,
            size_sigma=0.0,
            pfs_dir="/pfs/pftest",
        ),
        seed,
    )


def build(n_nodes=2, spec=None, **hvac):
    env = Environment()
    spec = (spec or TESTING).with_hvac(**hvac)
    alloc = Allocation(env, spec, n_nodes=n_nodes)
    pfs = GPFS(env, spec.pfs, n_nodes, spec.network.nic_bandwidth)
    dep = HVACDeployment(alloc, pfs, seed=0)
    return env, dep, pfs


class TestPlanner:
    def test_same_seed_same_plan_and_digest(self):
        ds = dataset()
        a = ClairvoyantPlanner.from_epoch_plans(ds, 2, epochs=2, shuffle_seed=7)
        b = ClairvoyantPlanner.from_epoch_plans(ds, 2, epochs=2, shuffle_seed=7)
        assert a.digest() == b.digest()
        assert a.schedules() == b.schedules()

    def test_digest_sensitive_to_seed_and_epochs(self):
        ds = dataset()
        a = ClairvoyantPlanner.from_epoch_plans(ds, 2, epochs=2, shuffle_seed=7)
        assert a.digest() != ClairvoyantPlanner.from_epoch_plans(
            ds, 2, epochs=2, shuffle_seed=8
        ).digest()
        assert a.digest() != ClairvoyantPlanner.from_epoch_plans(
            ds, 2, epochs=3, shuffle_seed=7
        ).digest()

    def test_plan_matches_the_loader_order(self):
        """The planner must use the data loader's own shard math, so
        plan and demand can never disagree."""
        ds = dataset()
        planner = ClairvoyantPlanner.from_epoch_plans(ds, 2, epochs=2, shuffle_seed=5)
        for rank in range(2):
            want = []
            for epoch in range(2):
                plan = make_epoch_plan(ds, epoch, 2, shuffle_seed=5)
                want.extend(
                    (ds.path(int(i)), ds.size(int(i)))
                    for i in plan.shards[rank].indices
                )
            assert planner.schedule(rank).entries == tuple(want)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClairvoyantPlanner({})
        with pytest.raises(ValueError):
            ClairvoyantPlanner.from_epoch_plans(dataset(), 2, epochs=0)
        with pytest.raises(ValueError):
            ClairvoyantPlanner.from_epoch_plans(dataset(), 2, epochs=1, keys=[0])


class TestLookaheadScheduler:
    def _run(self, fault_at=None, recover_at=None, trace=None, off_plan=False):
        """One clairvoyant 2-node run; returns (dep, sched, results)."""
        env, dep, _pfs = build(
            rpc_max_retries=2,
            rpc_backoff_base=1e-4,
            rpc_backoff_cap=1e-3,
            suspect_after=2,
            probation_period=0.02,
        )
        if trace is not None:
            env.attach_trace(trace)
        ds = dataset()
        planner = ClairvoyantPlanner.from_epoch_plans(ds, 2, epochs=2, shuffle_seed=1)
        sched = LookaheadScheduler(dep, planner, lookahead=4, outstanding=2)
        dep.attach_prefetch(sched)
        sched.start()
        results = {0: [], 1: []}

        def reader(node):
            cli = dep.client(node)
            entries = planner.schedule(node).entries
            if off_plan and node == 1:
                # First read leaves the plan: this client's window must
                # freeze without touching anyone else's staging.
                n = yield from cli.read_file("/pfs/pftest/off-plan", 1000, node)
                results[node].append(("/pfs/pftest/off-plan", n))
            for path, size in entries:
                n = yield from cli.read_file(path, size, node)
                results[node].append((path, n))

        procs = [env.process(reader(n), name=f"reader.n{n}") for n in (0, 1)]
        if fault_at is not None:

            def crasher():
                yield env.timeout(fault_at)
                dep.fail_node(0)
                if recover_at is not None:
                    yield env.timeout(recover_at)
                    dep.recover_node(0)

            env.process(crasher(), name="crasher")

        def wait():
            yield AllOf(env, procs)

        env.run(env.process(wait(), name="wait"))
        sched.stop()
        env.run()
        return dep, sched, results

    def test_staging_warms_the_cache(self):
        dep, sched, results = self._run()
        assert sched.files_staged > 0
        assert sched.plan_valid
        assert dep.metrics.counter("hvac.cache_hits").value > 0
        # Every read delivered its full size.
        for node, got in results.items():
            assert all(n > 0 for _, n in got)

    def test_same_seed_double_run_is_fingerprint_identical(self):
        a, b = EventTrace(), EventTrace()
        self._run(trace=a)
        self._run(trace=b)
        assert a.count == b.count
        assert a.fingerprint == b.fingerprint

    def test_crash_invalidates_and_reads_fall_back(self):
        dep, sched, results = self._run(fault_at=0.002)
        # The dead server's slice is invalidated; demand degrades to
        # failover/PFS and every read still completes in full.
        assert not sched.plan_valid
        assert dep.metrics.counter("prefetch.invalidations").value >= 1
        for node, got in results.items():
            assert len(got) == len(sched.planner.schedule(node).entries)
            assert all(n > 0 for _, n in got)

    def test_recovery_resumes_staging(self):
        dep, sched, _ = self._run(fault_at=0.002, recover_at=0.01)
        assert dep.metrics.counter("prefetch.resumes").value >= 1
        assert sched.plan_valid  # the resumed slice re-armed

    def test_off_plan_read_freezes_only_that_client(self):
        dep, sched, results = self._run(off_plan=True)
        assert dep.metrics.counter("prefetch.divergences").value == 1
        # The diverged client still completes reactively; the other
        # client's staging keeps running.
        assert sched.files_staged > 0
        assert all(n > 0 for _, n in results[1])

    def test_validation(self):
        env, dep, _ = build()
        planner = ClairvoyantPlanner.from_plans({0: [("/pfs/x", 10)]})
        with pytest.raises(ValueError):
            LookaheadScheduler(dep, planner, lookahead=0)
        with pytest.raises(ValueError):
            LookaheadScheduler(dep, planner, outstanding=0)
        sched = LookaheadScheduler(dep, planner)
        sched.start()
        with pytest.raises(RuntimeError):
            sched.start()


class TestReactiveStarvation:
    """The demand-starvation fix in the reactive baseline: bulk
    staging must never order a same-instant demand read behind a full
    re-enqueued prefetch wave, and a server dying mid-fetch must not
    crash the (caller-less) prefetch process."""

    FILES = [(f"/data/f{i}", 60_000) for i in range(32)]

    def test_demand_read_is_not_starved_by_bulk_staging(self):
        env, dep, _ = build(n_nodes=2)
        pre = CachePrefetcher(
            dep,
            [p for p, _ in self.FILES],
            [s for _, s in self.FILES],
            max_outstanding=2,
        )
        proc = pre.start()
        t_demand = {}

        def demand():
            cli = dep.client(0)
            yield from cli.read_file(*self.FILES[-1], 0)
            t_demand["done"] = env.now

        env.process(demand(), name="demand")
        env.run(proc)
        assert pre.done
        # The demand read slots into the sliding window instead of
        # waiting out the whole bulk stream.
        assert t_demand["done"] < 0.5 * env.now

    def test_mid_fetch_crash_does_not_crash_the_prefetcher(self):
        env, dep, _ = build(n_nodes=2)
        pre = CachePrefetcher(
            dep,
            [p for p, _ in self.FILES],
            [s for _, s in self.FILES],
            max_outstanding=2,
        )
        pre.start()

        def crasher():
            yield env.timeout(1e-4)
            dep.fail_node(1)

        env.process(crasher(), name="crasher")
        env.run()  # an unhandled RPCError here would raise out of run()
        assert pre.done
        assert 0 < pre.files_prefetched <= len(self.FILES)


def compressed_cache(env, capacity=10_000, ratio=0.5, cost=1e-9):
    spec = NVMeSpec(
        capacity_bytes=capacity * 10,
        read_bandwidth=1e9,
        write_bandwidth=1e9,
        read_latency=1e-6,
        write_latency=1e-6,
        queue_depth=8,
        fs_open_close_latency=1e-6,
    )
    fs = LocalFS(env, 0, NVMeDevice(env, spec), track_namespace=False)
    return CacheManager(
        env,
        fs,
        capacity,
        make_policy("lru", np.random.default_rng(0)),
        name="comp",
        compression_ratio=ratio,
        decompress_cost_per_byte=cost,
    )


def run(env, gen):
    return env.run(env.process(gen))


class TestCompressedTier:
    def test_residents_occupy_compressed_bytes(self):
        env = Environment()
        cache = compressed_cache(env, ratio=0.5)
        assert run(env, cache.insert("/f", 1000)) is True
        assert cache.used_bytes == 500
        # Serving still knows the raw size.
        assert run(env, cache.read("/f")) == 1000

    def test_hit_pays_deterministic_decompress_cost(self):
        env = Environment()
        cost = 1e-6  # per raw byte, dwarfs the device read
        cache = compressed_cache(env, ratio=0.5, cost=cost)
        run(env, cache.insert("/f", 1000))
        t0 = env.now
        run(env, cache.read("/f"))
        elapsed = env.now - t0
        assert elapsed >= cost * 1000
        t = cache.metrics.tally("comp.decompress_seconds")
        assert t.n == 1
        assert t.mean == pytest.approx(cost * 1000)

    def test_ratio_one_tier_is_inert(self):
        env = Environment()
        cache = compressed_cache(env, ratio=1.0, cost=0.0)
        run(env, cache.insert("/f", 1000))
        assert cache.used_bytes == 1000
        run(env, cache.read("/f"))
        assert cache.metrics.tally("comp.decompress_seconds").n == 0

    def test_arbiter_is_charged_compressed_bytes(self):
        from repro.tenancy import QuotaLedger, TenantCacheArbiter, TenantSpec

        env = Environment()
        cache = compressed_cache(env, ratio=0.5)
        ledger = QuotaLedger(env, [TenantSpec(tenant_id=0, quota_bytes=5_000)])
        TenantCacheArbiter("shared", ledger, {0: 1.0}).attach(cache)
        run(env, cache.insert("/pfs/t0/f", 1000))
        # Quota sees what the device holds: the stored (compressed) size.
        assert ledger.used_bytes(0) == 500
        cache.evict("/pfs/t0/f")
        assert ledger.used_bytes(0) == 0

    def test_compressed_capacity_admits_more_raw_bytes(self):
        env = Environment()
        plain = compressed_cache(env, capacity=1000, ratio=1.0)
        comp = compressed_cache(env, capacity=1000, ratio=0.25)
        for i in range(4):
            run(env, plain.insert(f"/p{i}", 1000))
            run(env, comp.insert(f"/c{i}", 1000))
        assert plain.n_files == 1  # each insert evicted the last
        assert comp.n_files == 4  # all fit at quarter size

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            compressed_cache(env, ratio=0.0)
        with pytest.raises(ValueError):
            compressed_cache(env, ratio=1.5)
        with pytest.raises(ValueError):
            compressed_cache(env, cost=-1.0)


class TestFuzzPrefetchDimension:
    def _scenario(self, prefetch):
        from repro.fuzz import Scenario, Workload

        return Scenario(
            seed=11,
            n_nodes=3,
            n_files=10,
            mean_file_size=20_000,
            workload=Workload(kind="uniform", clients=(0, 1), reads_per_client=8),
            prefetch=prefetch,
            faults=(),
        )

    def test_round_trip_and_digest(self):
        from repro.fuzz import Scenario
        from repro.fuzz.scenario import scenario_digest

        s = self._scenario(True)
        back = Scenario.from_dict(s.to_dict())
        assert back == s
        assert scenario_digest(s) != scenario_digest(self._scenario(False))

    def test_old_case_files_default_to_reactive(self):
        from repro.fuzz import Scenario

        d = self._scenario(False).to_dict()
        d.pop("prefetch")  # a case file saved before the dimension existed
        assert Scenario.from_dict(d).prefetch is False

    def test_executor_stages_when_prefetch_is_on(self):
        from repro.fuzz.executor import execute

        obs = execute(self._scenario(True))
        assert not obs.aborted
        assert obs.epochs and not any(e.hung for e in obs.epochs)

    def test_read_results_identical_prefetch_on_and_off(self):
        """Staging changes timing, never data: the same scenario plan
        delivers byte-identical read results with the scheduler on."""
        ds = dataset(n_files=16)
        got = {}
        for on in (False, True):
            env, dep, _ = build()
            planner = ClairvoyantPlanner.from_epoch_plans(
                ds, 2, epochs=1, shuffle_seed=2
            )
            if on:
                sched = LookaheadScheduler(dep, planner, lookahead=4, outstanding=2)
                dep.attach_prefetch(sched)
                sched.start()
            results = {0: [], 1: []}

            def reader(node):
                cli = dep.client(node)
                for path, size in planner.schedule(node).entries:
                    n = yield from cli.read_file(path, size, node)
                    results[node].append((path, n))

            procs = [env.process(reader(n), name=f"r{n}") for n in (0, 1)]

            def wait():
                yield AllOf(env, procs)

            env.run(env.process(wait(), name="wait"))
            got[on] = results
        assert got[True] == got[False]
