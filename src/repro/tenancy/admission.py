"""Fleet admission control: reject / queue / degrade-to-PFS.

Jobs arrive with a cache-byte demand (their quota, or their dataset
size when unquoted).  The controller holds a running reservation
against the fleet's aggregate cache capacity (× an overcommit factor)
and resolves each arrival deterministically:

* **admit**   — demand fits: reserve and run.
* **queue**   — saturated, queue has room: park behind an event that
  fires (FIFO) as running jobs release their reservations.
* **degrade** — saturated, queue full, degradation allowed: the job
  runs *now* but entirely against the PFS (the client's ``pfs_only``
  mode), consuming zero cache.
* **reject**  — saturated, queue full, degradation disallowed.

Every decision is appended to :attr:`decisions` — the deterministic
admission log the tenancy experiment prints.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..simcore import Environment

from .tenant import TenantSpec

__all__ = ["AdmissionController", "AdmissionDecision"]

ACTIONS = ("admit", "queue", "degrade", "reject")


@dataclass
class AdmissionDecision:
    """One resolved arrival (the event is set for queued jobs only)."""

    tenant_id: int
    action: str
    t: float
    demand_bytes: int
    reserved_bytes: int
    event: object = None


class AdmissionController:
    """Saturation gatekeeper over the fleet's aggregate cache bytes."""

    def __init__(
        self,
        env: Environment,
        fleet_capacity_bytes: int,
        overcommit: float = 1.0,
        queue_limit: int = 2,
        degrade_ok: bool = True,
    ):
        if fleet_capacity_bytes <= 0:
            raise ValueError("fleet_capacity_bytes must be positive")
        if overcommit <= 0:
            raise ValueError("overcommit must be positive")
        self.env = env
        self.budget = int(fleet_capacity_bytes * overcommit)
        self.queue_limit = queue_limit
        self.degrade_ok = degrade_ok
        self.reserved = 0
        self._held: dict[int, int] = {}
        self._waiting: deque[tuple[int, int, object]] = deque()
        self.decisions: list[AdmissionDecision] = []

    @staticmethod
    def demand_of(spec: TenantSpec) -> int:
        """Cache bytes a job asks the fleet to hold for it."""
        if spec.quota_bytes is not None:
            return spec.quota_bytes
        return spec.dataset_bytes

    def request(self, spec: TenantSpec) -> AdmissionDecision:
        """Resolve one arrival; queued jobs must wait on ``.event``."""
        demand = self.demand_of(spec)
        if self.reserved + demand <= self.budget:
            action, event = "admit", None
            self.reserved += demand
            self._held[spec.tenant_id] = demand
        elif len(self._waiting) < self.queue_limit:
            action, event = "queue", self.env.event()
            self._waiting.append((spec.tenant_id, demand, event))
        elif self.degrade_ok:
            action, event = "degrade", None
        else:
            action, event = "reject", None
        decision = AdmissionDecision(
            tenant_id=spec.tenant_id,
            action=action,
            t=self.env.now,
            demand_bytes=demand,
            reserved_bytes=self.reserved,
            event=event,
        )
        self.decisions.append(decision)
        return decision

    def release(self, tenant_id: int) -> None:
        """A job finished: free its reservation, promote queued jobs."""
        held = self._held.pop(tenant_id, None)
        if held is None:
            return
        self.reserved -= held
        while self._waiting:
            tid, demand, event = self._waiting[0]
            if self.reserved + demand > self.budget:
                break
            self._waiting.popleft()
            self.reserved += demand
            self._held[tid] = demand
            event.succeed()

    def counts(self) -> dict[str, int]:
        """Decision tally for the admission log table."""
        out = {a: 0 for a in ACTIONS}
        for d in self.decisions:
            out[d.action] += 1
        return out
