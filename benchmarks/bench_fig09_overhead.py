"""Fig 9: HVAC normalized against GPFS (a) and XFS-on-NVMe (b).

(a) improvement over GPFS: 7–25% at ≤256 nodes, >50% at 512/1024.
(b) overhead vs XFS: ≈25% (1×1), ≈14% (2×1), ≈9% (4×1), stable in node
    count — the paper attributes it to HVAC's implementation overhead.
"""

import numpy as np
import pytest

from repro.analysis import format_series
from repro.dl import IMAGENET21K, RESNET50
from repro.experiments import (
    node_scaling,
    node_scaling_analytic,
    normalized_to_gpfs,
    overhead_vs_xfs,
)

from conftest import bench_nodes, bench_scale, paper_nodes


def _run():
    des = node_scaling(
        RESNET50,
        IMAGENET21K,
        bench_nodes(),
        bench_scale(),
        systems=("gpfs", "hvac1", "hvac2", "hvac4", "xfs"),
        total_epochs=10,
    )
    analytic = node_scaling_analytic(
        RESNET50, IMAGENET21K, paper_nodes(), total_epochs=10
    )
    return des, analytic


@pytest.mark.benchmark(group="fig09")
def test_fig09_normalized_views(benchmark, capsys):
    des, analytic = benchmark.pedantic(_run, rounds=1, iterations=1)
    des_gain = normalized_to_gpfs(des)
    des_ovh = overhead_vs_xfs(des)
    full_gain = normalized_to_gpfs(analytic)
    full_ovh = overhead_vs_xfs(analytic)
    with capsys.disabled():
        print()
        print(format_series("nodes", des.node_counts, des_gain,
                            title="Fig 9a: % improvement over GPFS [DES]"))
        print()
        print(format_series("nodes", analytic.node_counts, full_gain,
                            title="Fig 9a: % improvement over GPFS [analytic, full]"))
        print()
        print(format_series("nodes", des.node_counts, des_ovh,
                            title="Fig 9b: % overhead vs XFS-on-NVMe [DES]"))
        print()
        print(format_series("nodes", analytic.node_counts, full_ovh,
                            title="Fig 9b: % overhead vs XFS-on-NVMe [analytic, full]"))

    # (a) >50% improvement at 512 and 1024 nodes (analytic full sweep).
    idx512 = analytic.node_counts.index(512)
    idx1024 = analytic.node_counts.index(1024)
    for label in ("HVAC(1x1)", "HVAC(2x1)", "HVAC(4x1)"):
        assert full_gain[label][idx512] > 50.0
        assert full_gain[label][idx1024] > 50.0

    # (b) overhead ordering 1×1 > 2×1 > 4×1 at every DES point, and the
    # 4×1 band sits near the paper's ≈9–15%.
    o1, o2, o4 = (np.array(des_ovh[k]) for k in ("HVAC(1x1)", "HVAC(2x1)", "HVAC(4x1)"))
    assert (o1 > o2).all() and (o2 > o4).all()
    assert 3.0 < float(o4.mean()) < 20.0
    assert 15.0 < float(o1.mean()) < 35.0
