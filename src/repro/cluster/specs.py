"""Hardware specifications and calibrated presets.

All the constants that determine simulated performance live here, in one
place, as frozen dataclasses.  The defaults are calibrated against the
published Summit numbers the paper reports (Table I and §II-C):

* Alpine GPFS aggregate read bandwidth: 2.5 TB/s.
* Node-local NVMe aggregate at 4,096 nodes: 22.5 TB/s → ≈5.5 GB/s/node.
* 1.6 TB Samsung NVMe per node, dual-rail EDR Infiniband (≈12.5 GB/s
  usable per direction per node), 512 GB DDR4, 6 V100 GPUs.

Every experiment takes a :class:`ClusterSpec` so ablations can perturb
any constant without touching model code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "NVMeSpec",
    "NetworkSpec",
    "PFSSpec",
    "NodeSpec",
    "HVACSpec",
    "ClusterSpec",
    "SUMMIT",
    "FRONTIER",
    "TESTING",
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "KB",
    "MB",
    "GB",
    "TB",
]

KiB = 1024
MiB = 1024**2
GiB = 1024**3
TiB = 1024**4
KB = 1000
MB = 1000**2
GB = 1000**3
TB = 1000**4


@dataclass(frozen=True)
class NVMeSpec:
    """A node-local NVMe SSD (Summit: 1.6 TB Samsung PM1725a, XFS)."""

    capacity_bytes: int = int(1.6e12)
    read_bandwidth: float = 5.5e9  # bytes/s (22.5 TB/s / 4096 nodes)
    write_bandwidth: float = 2.1e9  # bytes/s
    read_latency: float = 80e-6  # seconds per request
    write_latency: float = 30e-6
    queue_depth: int = 64
    #: fixed filesystem (XFS) cost of an open()+close() pair on the device
    fs_open_close_latency: float = 15e-6

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.read_bandwidth <= 0:
            raise ValueError("NVMe capacity and bandwidth must be positive")


@dataclass(frozen=True)
class NetworkSpec:
    """Compute fabric (Summit: dual-rail Mellanox EDR Infiniband)."""

    nic_bandwidth: float = 12.5e9  # bytes/s per node per direction
    link_latency: float = 1.5e-6  # propagation + switching, seconds
    #: full-bisection core capacity per node pair share; Summit's fat
    #: tree is non-blocking, so default to effectively unconstrained.
    bisection_bandwidth_per_node: float = 12.5e9
    #: per-message software overhead at each endpoint (verbs post, IRQ)
    per_message_overhead: float = 0.8e-6
    #: same-node (shared-memory) transport bandwidth for co-located
    #: client/server pairs, bytes/s
    loopback_bandwidth: float = 50e9
    #: nodes per rack for the topology model; 0 = flat (non-blocking)
    #: fabric, the Summit default.  With racks, inter-rack transfers
    #: additionally contend on per-rack uplinks.
    rack_size: int = 0
    #: per-rack uplink bandwidth (bytes/s per direction); 0 → equal to
    #: ``rack_size × nic_bandwidth`` (no oversubscription)
    rack_uplink_bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if self.nic_bandwidth <= 0:
            raise ValueError("NIC bandwidth must be positive")
        if self.rack_size < 0 or self.rack_uplink_bandwidth < 0:
            raise ValueError("rack parameters must be >= 0")


@dataclass(frozen=True)
class PFSSpec:
    """A GPFS/Lustre-like center-wide parallel file system (Alpine).

    The two saturation mechanisms that drive the paper's motivation:

    * ``n_metadata_servers`` × ``metadata_ops_per_sec`` caps the global
      *open-read-close transaction* rate (small-file regime, Fig 3);
    * ``n_data_servers`` × ``data_server_bandwidth`` caps aggregate read
      bandwidth (large-file regime, Fig 4) — defaults give 2.5 TB/s.
    """

    n_metadata_servers: int = 32
    #: per MDS: lookup + token grant ops.  30 k ops/s × 32 MDS with a
    #: 3-op transaction gives a ≈320 k tx/s aggregate ceiling, which
    #: reproduces both the Fig 3 MDTest plateau and the paper's ≈3×
    #: cached-epoch speedup over saturated GPFS at 512 nodes (Fig 11).
    metadata_ops_per_sec: float = 30_000.0
    #: extra serialized ops per open for lock/token management
    ops_per_open: float = 2.0
    ops_per_close: float = 1.0
    n_data_servers: int = 154
    data_server_bandwidth: float = 16.3e9  # bytes/s each → ≈2.5 TB/s total
    stripe_size: int = 16 * MiB
    #: per-request latency a client *observes* on the data path: network
    #: round trip, disk head-of-line, and the steady interference of a
    #: *center-wide* shared file system (Alpine serves every OLCF
    #: resource, §IV-A1).  A pure delay — it does NOT occupy the data
    #: server (other users cause it, not this job).  Calibrated so
    #: unsaturated GPFS costs ≈1.4 ms per small-file transaction, which
    #: reproduces the paper's ≈20% HVAC gain at small node counts
    #: (Fig 8a/b) on top of the saturation effects.
    data_latency: float = 1.2e-3
    #: per-request service time that DOES occupy a data server (request
    #: processing, seek/queue); sets the NSD request-rate ceiling at
    #: n_data_servers / (overhead + transfer) — high enough that small
    #: files stay metadata-bound, as on the real system.
    data_server_overhead: float = 100e-6
    #: concurrent requests a single data server can overlap
    data_server_concurrency: int = 48
    #: concurrent RPCs a single MDS can overlap (token server threads)
    mds_concurrency: int = 16
    #: client-side software path length per call (GPFS client daemon)
    client_overhead: float = 25e-6

    @property
    def aggregate_bandwidth(self) -> float:
        return self.n_data_servers * self.data_server_bandwidth

    @property
    def aggregate_metadata_ops(self) -> float:
        return self.n_metadata_servers * self.metadata_ops_per_sec


@dataclass(frozen=True)
class NodeSpec:
    """A compute node (Summit AC922, Table I)."""

    n_gpus: int = 6
    n_cores: int = 44  # 2 × POWER9 22 cores
    memory_bytes: int = 512 * GiB
    nvme: NVMeSpec = field(default_factory=NVMeSpec)


@dataclass(frozen=True)
class HVACSpec:
    """Tunables of the HVAC library itself (paper §III).

    ``server_request_overhead`` is the paper's "implementation overhead"
    — FIFO queueing, RPC dispatch, and buffer copies per request inside
    one HVAC server instance.  More instances per node divide the
    per-node serialization, which is why HVAC(4×1) shows ~9% overhead vs
    HVAC(1×1)'s ~25% (Fig 9b).
    """

    instances_per_node: int = 1
    #: serialized server-side software time per request, per instance —
    #: the single data-mover thread's dispatch/copy path.  Calibrated by
    #: sweep (see EXPERIMENTS.md): 180 µs reproduces the paper's Fig 9b
    #: overhead bands vs XFS-on-NVMe — HVAC(1×1)≈25%, (2×1)≈14%,
    #: (4×1)≈9% — under the synchronous per-iteration read pattern.
    server_request_overhead: float = 180e-6
    #: client-side interception + hashing + RPC marshalling per call
    client_request_overhead: float = 5e-6
    #: requests one server instance data-mover can overlap against NVMe
    data_mover_concurrency: int = 16
    #: fraction of node-local NVMe HVAC may use for cache
    cache_fraction: float = 0.9
    eviction_policy: str = "random"  # random | lru | fifo | minio
    hash_scheme: str = "mod"  # mod | consistent
    #: virtual nodes per server for consistent hashing
    consistent_vnodes: int = 64
    replication_factor: int = 1  # >1 enables §III-H replication
    #: whether clients fail over to replicas when a server has failed
    failover_enabled: bool = True
    #: segment-level caching for large files (§III-E / conclusion:
    #: "data layout options for large files across multiple nodes"):
    #: files above ``stripe_threshold`` are cached as independent
    #: segments homed at different servers and read in parallel.
    stripe_large_files: bool = False
    stripe_threshold: int = 64 * 1024 * 1024
    stripe_segment: int = 16 * 1024 * 1024
    #: rack-aware replica placement + same-rack read preference
    #: (requires replication_factor >= 2 and a NetworkSpec rack_size)
    topology_aware: bool = False
    # -- timeout-based failure detection (§III-H) ----------------------
    #: per-RPC deadline on every forwarded read; a call that exceeds it
    #: raises RPCTimeout and counts as a strike against the server.
    #: Generous by default so calibrated healthy runs never trip it;
    #: resilience experiments tighten it for snappy detection.
    rpc_timeout: float = 15.0
    #: bounded retry attempts per forwarded read before PFS fallback
    rpc_max_retries: int = 4
    #: exponential backoff base between retries (doubled per attempt,
    #: jittered x0.5-1.5 from the client's seeded stream)
    rpc_backoff_base: float = 0.5e-3
    #: ceiling on a single backoff sleep
    rpc_backoff_cap: float = 0.1
    #: consecutive timeouts/errors before a server is suspected
    suspect_after: int = 2
    #: how long a suspected server stays blacklisted before a re-probe
    probation_period: float = 2.0
    # -- membership & repair (gossip suspicion, remap, re-replication) --
    #: share timeout evidence between clients: per-node MembershipView,
    #: digests piggybacked on every RPC + anti-entropy gossip rounds
    membership_enabled: bool = False
    #: mean sleep between one client's anti-entropy rounds (jittered
    #: x0.5-1.5 from its seeded stream)
    gossip_interval: float = 0.05
    #: a suspected server the view hears no refutation from for this
    #: long is declared dead (dropped from routing and placement)
    suspect_to_dead: float = 0.25
    #: remap a dead server's hash range onto live stand-ins instead of
    #: paying per-read fallback (requires membership)
    remap_enabled: bool = True
    #: stream a recovered server's lost shard back from replica peers
    #: (or PFS) in the background (requires membership)
    repair_enabled: bool = True
    #: repair throttle in bytes/s; 0 = unthrottled
    repair_bandwidth: float = 0.0
    #: cap on RPC attempts per striped *segment* (0 = use
    #: rpc_max_retries); segments give up early and count a
    #: ``client_seg_fallbacks`` instead of burning the full backoff walk
    segment_retry_budget: int = 0
    # -- clairvoyant prefetch & compressed tier (§IV-C future work) -----
    #: ``off`` = demand reads only; ``reactive`` = bulk pre-population
    #: at job start (CachePrefetcher); ``clairvoyant`` = look-ahead
    #: staging driven by the seeded per-epoch access plan (NoPFS-style)
    prefetch_mode: str = "off"
    #: files staged ahead of each client's plan cursor (clairvoyant)
    prefetch_lookahead: int = 4
    #: outstanding staged requests allowed per server at once — the
    #: scheduler's per-server credit budget; demand reads never wait on
    #: this, only staging does
    prefetch_outstanding: int = 2
    #: FanStore-style compressed residents: cache files at
    #: ``compression_ratio`` × raw size and charge
    #: ``decompress_cost_per_byte`` sim-seconds per *raw* byte on every
    #: hit.  1.0 disables the tier (no extra events, byte-identical).
    compression_ratio: float = 1.0
    decompress_cost_per_byte: float = 0.0

    def __post_init__(self) -> None:
        if self.instances_per_node < 1:
            raise ValueError("instances_per_node must be >= 1")
        if not 0 < self.cache_fraction <= 1:
            raise ValueError("cache_fraction must be in (0, 1]")
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.eviction_policy not in ("random", "lru", "fifo", "minio"):
            raise ValueError(f"unknown eviction policy {self.eviction_policy!r}")
        if self.hash_scheme not in ("mod", "consistent"):
            raise ValueError(f"unknown hash scheme {self.hash_scheme!r}")
        if self.stripe_segment < 1 or self.stripe_threshold < 1:
            raise ValueError("stripe sizes must be positive")
        if self.rpc_timeout <= 0:
            raise ValueError("rpc_timeout must be positive")
        if self.rpc_max_retries < 1:
            raise ValueError("rpc_max_retries must be >= 1")
        if self.rpc_backoff_base < 0 or self.rpc_backoff_cap < 0:
            raise ValueError("backoff parameters must be >= 0")
        if self.suspect_after < 1:
            raise ValueError("suspect_after must be >= 1")
        if self.probation_period < 0:
            raise ValueError("probation_period must be >= 0")
        if self.gossip_interval <= 0:
            raise ValueError("gossip_interval must be positive")
        if self.suspect_to_dead < 0:
            raise ValueError("suspect_to_dead must be >= 0")
        if self.repair_bandwidth < 0:
            raise ValueError("repair_bandwidth must be >= 0")
        if self.segment_retry_budget < 0:
            raise ValueError("segment_retry_budget must be >= 0")
        if self.prefetch_mode not in ("off", "reactive", "clairvoyant"):
            raise ValueError(f"unknown prefetch mode {self.prefetch_mode!r}")
        if self.prefetch_lookahead < 1:
            raise ValueError("prefetch_lookahead must be >= 1")
        if self.prefetch_outstanding < 1:
            raise ValueError("prefetch_outstanding must be >= 1")
        if not 0 < self.compression_ratio <= 1:
            raise ValueError("compression_ratio must be in (0, 1]")
        if self.decompress_cost_per_byte < 0:
            raise ValueError("decompress_cost_per_byte must be >= 0")


@dataclass(frozen=True)
class ClusterSpec:
    """A full machine: nodes + fabric + PFS + HVAC defaults."""

    name: str = "summit"
    total_nodes: int = 4608
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    pfs: PFSSpec = field(default_factory=PFSSpec)
    hvac: HVACSpec = field(default_factory=HVACSpec)

    def with_hvac(self, **kwargs) -> "ClusterSpec":
        """A copy with HVAC tunables overridden."""
        return replace(self, hvac=replace(self.hvac, **kwargs))

    def with_pfs(self, **kwargs) -> "ClusterSpec":
        return replace(self, pfs=replace(self.pfs, **kwargs))

    def with_network(self, **kwargs) -> "ClusterSpec":
        return replace(self, network=replace(self.network, **kwargs))


#: Summit / Alpine as evaluated in the paper.
SUMMIT = ClusterSpec()

#: Frontier-like preset (paper's "upcoming supercomputers" outlook):
#: Slingshot-11 NICs, larger/faster node-local NVMe, faster Orion-like PFS.
FRONTIER = ClusterSpec(
    name="frontier",
    total_nodes=9408,
    node=NodeSpec(
        n_gpus=8,
        n_cores=64,
        nvme=NVMeSpec(
            capacity_bytes=int(3.84e12),
            read_bandwidth=11e9,
            write_bandwidth=4.5e9,
            read_latency=60e-6,
        ),
    ),
    network=NetworkSpec(nic_bandwidth=25e9, link_latency=1.0e-6),
    pfs=PFSSpec(
        n_metadata_servers=40,
        metadata_ops_per_sec=40_000.0,
        n_data_servers=450,
        data_server_bandwidth=22e9,
    ),
)

#: Small, fast constants for unit tests: round numbers, tiny latencies.
TESTING = ClusterSpec(
    name="testing",
    total_nodes=16,
    node=NodeSpec(
        n_gpus=1,
        n_cores=4,
        nvme=NVMeSpec(
            capacity_bytes=10_000_000,
            read_bandwidth=1e9,
            write_bandwidth=1e9,
            read_latency=10e-6,
            write_latency=10e-6,
            queue_depth=4,
            fs_open_close_latency=5e-6,
        ),
    ),
    network=NetworkSpec(
        nic_bandwidth=1e9, link_latency=1e-6, per_message_overhead=1e-6
    ),
    pfs=PFSSpec(
        n_metadata_servers=2,
        metadata_ops_per_sec=1000.0,
        n_data_servers=4,
        data_server_bandwidth=1e9,
        stripe_size=1 * MiB,
        data_latency=100e-6,
        client_overhead=10e-6,
    ),
)
