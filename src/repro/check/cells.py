"""``repro check --cells`` — the whole-program shared-state auditor.

The runtime race sanitizer (:mod:`.races`) only watches the cells the
code remembers to ``note_access``; an attribute nobody celled is
invisible to it.  This pass closes that soundness gap statically, by
diffing two whole-program inventories:

1. **Concurrently-reachable writes.**  Every process-spawn site
   (``env.process(gen)``, including staging workers, gossip/repair
   agents, fault injectors) and every RPC-handler registration
   (``endpoint.register(op, self._handle)``) is a *root*.  Walking the
   module-level call graph (:mod:`.callgraph`) from every root yields,
   per function, how many concurrent process instances can be executing
   it: a root spawned in a loop (or a re-entrant RPC handler) counts as
   two.  Any ``self``-attribute write in a function reachable from two
   or more concurrent instances is shared-state by construction.
2. **The declared cell inventory.**  :mod:`.cell_registry` extracts
   every ``note_access`` site with its cell-name *shape* resolved, and
   carries the declared registry (``DECLARED_CELLS`` plus per-module
   ``RACE_CELLS`` literals).

The diff emits RACE2xx findings:

========  ============================================================
RACE201   multi-root-reachable attribute write in a function with no
          ``note_access`` in scope and no declared cell covering the
          attribute — the sanitizer cannot see this mutation
RACE202   a declared cell that no site ever write-notes — a dead or
          stale declaration giving false confidence of coverage
RACE203   a write to an attribute a declared cell *does* guard, in a
          function outside any ``note_access`` scope — the cell exists
          but this mutation bypasses it
RACE204   a cell-name template that can collide across entities: two
          distinct families producing the same concrete name, or
          adjacent f-string holes with no separating literal
========  ============================================================

Coverage granularity is the *function*: a function that notes any cell
is assumed to note the cells its own writes need (the runtime sanitizer
then checks the actual interleavings).  Kernel modules (``simcore.*``)
are exempt — the event loop's own bookkeeping is serialized by
construction; cells exist for *model* state.

False positives are silenced inline, loudly and with a reason::

    self.invalidated.add(sid)  # race: waive RACE201 -- monotone insert

Waivers that stop suppressing anything are reported as *stale* and fail
the check (same machinery as simlint's and perf's).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from .callgraph import CallGraph, module_name_for
from .cell_registry import (
    DECLARED_CELLS,
    CellDecl,
    extract_note_sites,
    parse_race_cells,
    registry_freshness,
    shapes_intersect,
)
from .linter import (
    StaleWaiver,
    _apply_waivers,
    _iter_python_files,
    _waiver_comment_lines,
    scope_of,
)
from .rules import Violation

__all__ = [
    "RACE_RULES",
    "CellAudit",
    "audit_files",
    "audit_source",
    "audit_tree",
]

#: rule code -> one-line rationale (mirrored in docs/INTERNALS.md)
RACE_RULES: dict[str, str] = {
    "RACE201": "attribute write reachable from >=2 concurrent process "
    "roots with no note_access in scope and no declared cell — the race "
    "sanitizer cannot see this mutation; note a cell or waive with a "
    "reason",
    "RACE202": "declared sanitizer cell that no site ever write-notes — "
    "a dead or stale declaration giving false confidence of coverage; "
    "delete it or note the writes",
    "RACE203": "write to an attribute a declared cell guards, outside any "
    "note_access scope — the cell exists but this mutation bypasses it",
    "RACE204": "cell-name template can collide across entities (two "
    "families intersect, or adjacent f-string holes have no separating "
    "literal) — distinct entities would share one cell and false-positive "
    "or mask each other",
}

_RACE_WAIVE_RE = re.compile(r"#\s*race:\s*waive\b([^#\n]*)")
_RACE_CODE_RE = re.compile(r"RACE\d{3}")

#: construction/teardown functions whose writes are setup, not shared
#: mutation — they run before (or after) any concurrent root exists
_SETUP_EXEMPT = {"__init__", "__post_init__"}

#: method names that mutate their receiver in place
_MUTATORS = {
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popleft", "remove", "setdefault", "update",
}

#: module parts exempt from write collection: the kernel's own
#: bookkeeping is serialized by the event loop itself
_KERNEL_PARTS = {"simcore"}


def _matches(module: str, suffixes: tuple[str, ...]) -> bool:
    return any(module == s or module.endswith("." + s) for s in suffixes)


def _is_kernel(module: str) -> bool:
    return any(part in _KERNEL_PARTS for part in module.split("."))


@dataclass(frozen=True)
class _Write:
    """One attribute write site inside a top-level function."""

    path: str
    line: int
    col: int
    module: str
    qual: str  #: enclosing function qualname (callgraph convention)
    attr: str  #: dotted self-rooted chain ("x" or "x.y")
    verb: str  #: "assign" | "augment" | "del" | a mutator name


@dataclass(frozen=True)
class _Spawn:
    """One process-spawn or handler-registration site."""

    path: str
    line: int
    module: str
    qual: str  #: enclosing function qualname ("" at module level)
    ref: tuple | None  #: callgraph-style reference to the generator
    replicated: bool  #: spawned in a loop / re-entrant handler
    kind: str  #: "process" | "handler"


class _AuditScanner(ast.NodeVisitor):
    """Writes and spawn roots for one module.

    Mirrors :class:`.callgraph._ModuleScanner`'s attribution rules —
    nested defs belong to their enclosing top-level function — so the
    function keys line up with the call graph's.
    """

    def __init__(self, module: str, path: str):
        self.module = module
        self.path = path
        self.writes: list[_Write] = []
        self.spawns: list[_Spawn] = []
        self._class_stack: list[str] = []
        self._func_stack: list[str] = []  # top-level qualnames only
        self._self = "self"
        #: local alias -> self attribute it names (``w = self._wakeups``)
        self._aliases: dict[str, str] = {}
        self._loop_depth = 0

    # -- structure ---------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_func(self, node) -> None:
        if self._func_stack:
            # Nested def: its body belongs to the enclosing function.
            self.generic_visit(node)
            return
        qual = ".".join([*self._class_stack, node.name])
        args = [*node.args.posonlyargs, *node.args.args]
        saved_self, saved_aliases, saved_loop = (
            self._self, self._aliases, self._loop_depth,
        )
        self._self = args[0].arg if (args and self._class_stack) else "self"
        self._aliases = {}
        self._loop_depth = 0
        self._func_stack.append(qual)
        self.generic_visit(node)
        self._func_stack.pop()
        self._self, self._aliases, self._loop_depth = (
            saved_self, saved_aliases, saved_loop,
        )

    visit_FunctionDef = visit_AsyncFunctionDef = _visit_func

    # -- write detection ---------------------------------------------------
    def _is_self(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id in (
            self._self, "self", "cls",
        )

    def _self_chain(self, node: ast.expr) -> str | None:
        """Dotted attribute chain rooted at self (``"x"``, ``"x.y"``)."""
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if parts and self._is_self(cur):
            return ".".join(reversed(parts))
        return None

    def _written_attr(self, target: ast.expr) -> str | None:
        if isinstance(target, ast.Attribute):
            return self._self_chain(target)
        if isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Attribute):
                return self._self_chain(base)
            if isinstance(base, ast.Name):
                return self._aliases.get(base.id)
        return None

    def _record_write(self, node: ast.AST, attr: str, verb: str) -> None:
        if not self._func_stack:
            return  # module-level: import time, single-threaded
        qual = self._func_stack[-1]
        if qual.rsplit(".", 1)[-1] in _SETUP_EXEMPT:
            return
        self.writes.append(
            _Write(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                module=self.module,
                qual=qual,
                attr=attr,
                verb=verb,
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            attr = self._written_attr(target)
            if attr is not None:
                self._record_write(node, attr, "assign")
            # Alias tracking: ``w = self._wakeups`` makes later
            # ``w[k] = ...`` a write to _wakeups.
            if isinstance(target, ast.Name):
                chain = (
                    self._self_chain(node.value)
                    if isinstance(node.value, ast.Attribute)
                    else None
                )
                if chain is not None and "." not in chain:
                    self._aliases[target.id] = chain
                else:
                    self._aliases.pop(target.id, None)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            attr = self._written_attr(node.target)
            if attr is not None:
                self._record_write(node, attr, "assign")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = self._written_attr(node.target)
        if attr is not None:
            self._record_write(node, attr, "augment")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            attr = self._written_attr(target)
            if attr is not None:
                self._record_write(node, attr, "del")
        self.generic_visit(node)

    # -- loops (spawn replication) ------------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._loop_depth += 1
        for stmt in [*node.body, *node.orelse]:
            self.visit(stmt)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._loop_depth += 1
        for stmt in [*node.body, *node.orelse]:
            self.visit(stmt)
        self._loop_depth -= 1

    def _visit_comp(self, node) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_ListComp = visit_SetComp = visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp

    # -- spawn roots ---------------------------------------------------------
    @staticmethod
    def _owner_name(node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return ""

    def _gen_ref(self, gen: ast.expr) -> tuple | None:
        """Callgraph-style reference to a spawned generator call."""
        if not isinstance(gen, ast.Call):
            return None
        func = gen.func
        if isinstance(func, ast.Name):
            return ("name", func.id)
        if isinstance(func, ast.Attribute):
            chain = [func.attr]
            root = func.value
            while isinstance(root, ast.Attribute):
                chain.append(root.attr)
                root = root.value
            if isinstance(root, ast.Name):
                chain.append(root.id)
                chain.reverse()
                if (
                    root.id in ("self", "cls", self._self)
                    and len(chain) == 2
                    and self._class_stack
                ):
                    return ("self", self._class_stack[-1], chain[1])
                return ("dotted", tuple(chain))
        return None

    def _record_spawn(self, node, ref, replicated, kind) -> None:
        self.spawns.append(
            _Spawn(
                path=self.path,
                line=node.lineno,
                module=self.module,
                qual=self._func_stack[-1] if self._func_stack else "",
                ref=ref,
                replicated=replicated,
                kind=kind,
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        # In-place mutation of a self attribute (or a local alias of one)
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            base = func.value
            attr: str | None = None
            if isinstance(base, ast.Attribute):
                attr = self._self_chain(base)
            elif isinstance(base, ast.Subscript):
                inner = base.value
                if isinstance(inner, ast.Attribute):
                    attr = self._self_chain(inner)
                elif isinstance(inner, ast.Name):
                    attr = self._aliases.get(inner.id)
            elif isinstance(base, ast.Name):
                attr = self._aliases.get(base.id)
            if attr is not None:
                self._record_write(node, attr, func.attr)
        # Process spawn: <...env>.process(gen, ...)
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "process"
            and node.args
        ):
            owner = self._owner_name(func.value)
            if owner.endswith("env") or owner == "environment":
                self._record_spawn(
                    node,
                    self._gen_ref(node.args[0]),
                    replicated=self._loop_depth > 0,
                    kind="process",
                )
        # RPC handler registration: <...endpoint>.register(op, handler)
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "register"
            and len(node.args) >= 2
            and "endpoint" in self._owner_name(func.value).lower()
        ):
            for arg in node.args[1:]:
                ref: tuple | None = None
                if (
                    isinstance(arg, ast.Attribute)
                    and self._is_self(arg.value)
                    and self._class_stack
                ):
                    ref = ("self", self._class_stack[-1], arg.attr)
                elif isinstance(arg, ast.Name):
                    ref = ("name", arg.id)
                if ref is not None:
                    # Handlers re-enter per incoming message: replicated.
                    self._record_spawn(node, ref, replicated=True,
                                       kind="handler")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# the audit
# ---------------------------------------------------------------------------

@dataclass
class CellAudit:
    """The result of a ``--cells`` pass over one file set."""

    violations: list[Violation]
    stale_waivers: list[StaleWaiver]
    freshness: list[str]  #: registry-drift errors (separate CI gate)
    n_files: int
    n_roots: int  #: distinct concurrent root functions found
    n_writes: int  #: attribute write sites collected

    @property
    def clean(self) -> bool:
        return not self.violations and not self.stale_waivers


def _no_waiver(line: int, rule: str) -> bool:
    return False


def _closure(graph: CallGraph, root: str) -> list[str]:
    seen = {root}
    frontier = [root]
    while frontier:
        info = graph.functions.get(frontier.pop())
        if info is None:
            continue
        for call in info.calls:
            if call.target is not None and call.target not in seen:
                seen.add(call.target)
                frontier.append(call.target)
    return sorted(seen)


def audit_files(files: list[tuple[str, str]]) -> CellAudit:
    """Run the shared-state audit over ``(path, source)`` pairs."""
    parsed: list[tuple[str, str, ast.Module]] = []
    for path, source in files:
        parsed.append((path, source, ast.parse(source, filename=path)))

    graph = CallGraph.build(
        (path, tree, scope_of(path), _no_waiver) for path, _, tree in parsed
    )

    writes: list[_Write] = []
    spawns: list[_Spawn] = []
    decls: list[CellDecl] = []
    for path, _, tree in parsed:
        module = module_name_for(path)
        decls.extend(parse_race_cells(tree, path))
        if scope_of(path) != "sim" or _is_kernel(module):
            continue
        scanner = _AuditScanner(module, path)
        scanner.visit(tree)
        writes.extend(scanner.writes)
        spawns.extend(scanner.spawns)

    # Registry declarations are in scope when their component is.
    for decl in DECLARED_CELLS:
        if any(_matches(m, (decl.component,)) for m in graph.modules):
            decls.append(decl)

    note_sites = extract_note_sites((p, t) for p, _, t in parsed)
    noted_funcs = {f"{s.module}::{s.func}" for s in note_sites}

    # -- concurrency roots and their closures -------------------------------
    root_weight: dict[str, int] = {}
    for spawn in spawns:
        mod = graph.modules.get(spawn.module)
        target = None
        if spawn.ref is not None and mod is not None:
            target = graph._resolve(mod, spawn.ref)
        if target is not None:
            key = target.key
        elif spawn.qual:
            # Unresolvable generator (local name, nested def): the
            # spawned body is attributed to the enclosing function, so
            # the enclosing function becomes the root.
            key = f"{spawn.module}::{spawn.qual}"
            if key not in graph.functions:
                continue
        else:
            continue
        root_weight[key] = root_weight.get(key, 0) + (
            2 if spawn.replicated else 1
        )

    func_weight: dict[str, int] = {}
    func_roots: dict[str, set[str]] = {}
    for rkey, weight in root_weight.items():
        for fkey in _closure(graph, rkey):
            func_weight[fkey] = func_weight.get(fkey, 0) + weight
            func_roots.setdefault(fkey, set()).add(rkey)

    # -- RACE201 / RACE203: un-noted writes ---------------------------------
    raw: list[Violation] = []
    for w in writes:
        key = f"{w.module}::{w.qual}"
        if key in noted_funcs:
            continue  # the function notes a cell; runtime checks the rest
        decl = next(
            (
                d
                for d in decls
                if w.attr in d.attrs and _matches(w.module, (d.component,))
            ),
            None,
        )
        if decl is not None:
            raw.append(
                Violation(
                    "RACE203", w.path, w.line, w.col,
                    f"{w.verb} of self.{w.attr} in {w.qual}() bypasses "
                    f"declared cell '{decl.pattern}' — no note_access in "
                    "scope, so the race sanitizer cannot see this mutation",
                )
            )
        elif func_weight.get(key, 0) >= 2:
            roots = sorted(
                graph.functions[r].qualname for r in func_roots.get(key, ())
            )
            shown = ", ".join(roots[:3]) + (", ..." if len(roots) > 3 else "")
            raw.append(
                Violation(
                    "RACE201", w.path, w.line, w.col,
                    f"{w.verb} of self.{w.attr} in {w.qual}() is reachable "
                    f"from {func_weight[key]} concurrent process instances "
                    f"(roots: {shown}) with no declared cell and no "
                    "note_access in scope",
                )
            )

    # -- RACE202: dead declarations -----------------------------------------
    path_of_module = {module_name_for(p): p for p, _, _ in parsed}
    write_shapes = {
        shape.tokens
        for site in note_sites
        if not site.forwarded and site.mode in ("w", "?")
        for shape in site.shapes
    }
    for decl in decls:
        if decl.shape.tokens in write_shapes:
            continue
        if decl.line and decl.path in path_of_module.values():
            anchor_path, anchor_line = decl.path, decl.line
        else:
            anchor_path = next(
                (
                    p
                    for m, p in sorted(path_of_module.items())
                    if _matches(m, (decl.component,))
                ),
                decl.path,
            )
            anchor_line = 1
        raw.append(
            Violation(
                "RACE202", anchor_path, anchor_line, 0,
                f"declared cell '{decl.pattern}' (guarding "
                f"{', '.join(decl.attrs) or 'no attrs'}) is never "
                "write-noted anywhere in the file set — dead or stale "
                "declaration",
            )
        )

    # -- RACE204: colliding name templates ----------------------------------
    first_site: dict[tuple[str, ...], object] = {}
    for site in note_sites:
        if site.forwarded:
            continue
        for shape in site.shapes:
            first_site.setdefault(shape.tokens, (site, shape))
    families = list(first_site.values())
    for site, shape in families:
        if shape.has_adjacent_holes:
            raw.append(
                Violation(
                    "RACE204", site.path, site.line, site.col,
                    f"cell family '{shape.render()}' interpolates two "
                    "entity ids with no separating literal — distinct id "
                    "pairs can produce the same cell name",
                )
            )
    for i in range(len(families)):
        for j in range(i + 1, len(families)):
            site_a, shape_a = families[i]
            site_b, shape_b = families[j]
            if shapes_intersect(shape_a, shape_b):
                raw.append(
                    Violation(
                        "RACE204", site_b.path, site_b.line, site_b.col,
                        f"cell family '{shape_b.render()}' can collide "
                        f"with '{shape_a.render()}' "
                        f"(noted at {site_a.path}:{site_a.line}) — two "
                        "entities would share one cell",
                    )
                )

    freshness = registry_freshness(
        ((p, t) for p, _, t in parsed), registry=decls
    )

    # -- waivers -------------------------------------------------------------
    by_path: dict[str, list[Violation]] = {}
    for v in raw:
        by_path.setdefault(v.path, []).append(v)
    violations: list[Violation] = []
    stale: list[StaleWaiver] = []
    for path, source, _ in parsed:
        lines = source.splitlines()
        found = sorted(
            by_path.get(path, ()), key=lambda v: (v.line, v.col, v.rule)
        )
        kept, used = _apply_waivers(
            found, lines, _RACE_WAIVE_RE, _RACE_CODE_RE
        )
        violations.extend(kept)
        for lineno, codes in sorted(
            _waiver_comment_lines(source, _RACE_WAIVE_RE, _RACE_CODE_RE).items()
        ):
            if lineno not in used:
                stale.append(StaleWaiver(path, lineno, frozenset(codes)))
    violations.extend(
        sorted(
            (v for v in raw if v.path not in {p for p, _, _ in parsed}),
            key=lambda v: (v.path, v.line, v.rule),
        )
    )

    return CellAudit(
        violations=violations,
        stale_waivers=stale,
        freshness=freshness,
        n_files=len(files),
        n_roots=len(root_weight),
        n_writes=len(writes),
    )


def audit_tree(paths: list[str]) -> CellAudit:
    """Audit every ``.py`` file under the given files/directories."""
    files: list[tuple[str, str]] = []
    for root in paths:
        for path in _iter_python_files(root):
            with open(path, encoding="utf-8") as fh:
                files.append((path, fh.read()))
    return audit_files(files)


def audit_source(source: str, path: str = "<string>") -> list[Violation]:
    """Audit one module's source text (the fixture-test entry point)."""
    return audit_files([(path, source)]).violations
