"""Cluster membership & repair (gossip suspicion, remap, re-replication).

The fault package (PR 1) made every client detect failures alone: each
pays its own timeout strikes, each re-probes independently, and a
recovered server comes back cold.  This package adds the three missing
layers on top of that machinery:

* :class:`MembershipView` + :class:`GossipAgent` — SWIM-style shared
  suspicion with incarnation counters.  Digests piggyback on every
  existing RPC (see ``rpc/endpoint.py``) and on a low-rate anti-entropy
  exchange between clients, so one client's timeout evidence spares the
  rest their duplicate probe storms;
* :class:`RemappedPlacement` — fault-aware placement: a dead server's
  hash range moves wholesale onto live stand-ins (and back on
  recovery), replacing per-read fallback with warm stand-in reads;
* :class:`RepairManager` — peer-to-peer replica repair: a recovered
  server streams its lost shard back from replica peers (or the PFS)
  under a shared bandwidth throttle, contending on the real fabric.

``experiments/membership.py`` / ``repro membership`` measure the stack
against detector-only failover.  Everything is deterministic: RNG from
``RandomStreams``, timestamps from the sim clock, transition logs
byte-identical across same-seed runs.
"""

from .gossip import GossipAgent
from .remap import RemappedPlacement
from .repair import RepairManager, RepairReport
from .view import ALIVE, DEAD, RECOVERING, STATE_RANK, SUSPECTED, MembershipView

__all__ = [
    "ALIVE",
    "DEAD",
    "GossipAgent",
    "MembershipView",
    "RECOVERING",
    "RemappedPlacement",
    "RepairManager",
    "RepairReport",
    "STATE_RANK",
    "SUSPECTED",
]
