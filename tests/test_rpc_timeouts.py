"""RPC timeout-path tests: deadline expiry, message loss, hangs, and
death-mid-call — the silent failures only a caller's deadline can see."""

import pytest

from repro.cluster import Fabric, NetworkSpec
from repro.rpc import RPCEndpoint, RPCError, RPCTimeout
from repro.simcore import Environment


def make_fabric(env, n=4):
    spec = NetworkSpec(
        nic_bandwidth=1e6,
        link_latency=0.001,
        bisection_bandwidth_per_node=1e6,
        per_message_overhead=0.0,
        loopback_bandwidth=1e7,
    )
    return Fabric(env, spec, n)


def make_pair(env, fab, handler_delay=0.0, reply="ok"):
    server = RPCEndpoint(env, fab, node_id=1, name="srv")
    client = RPCEndpoint(env, fab, node_id=0, name="cli")

    def handler(payload, src):
        yield env.timeout(handler_delay)
        return reply

    server.register("op", handler)
    return server, client


def run_call(env, client, server, caught, **kw):
    def caller():
        try:
            value = yield from client.call(server, "op", **kw)
        except RPCError as err:
            caught.append((env.now, err))
        else:
            caught.append((env.now, value))

    env.process(caller())


class TestDeadlineExpiry:
    def test_slow_handler_times_out_at_deadline(self):
        env = Environment()
        fab = make_fabric(env)
        server, client = make_pair(env, fab, handler_delay=10.0)
        caught = []
        run_call(env, client, server, caught, timeout=0.5)
        env.run(until=2.0)
        t, err = caught[0]
        assert isinstance(err, RPCTimeout)
        # Deadline starts after the request crosses the wire (~1 ms).
        assert t == pytest.approx(0.5, abs=0.01)

    def test_fast_handler_beats_deadline(self):
        env = Environment()
        fab = make_fabric(env)
        server, client = make_pair(env, fab, handler_delay=0.01)
        caught = []
        run_call(env, client, server, caught, timeout=0.5)
        env.run(until=2.0)
        t, value = caught[0]
        assert value == "ok"
        assert t < 0.5

    def test_late_reply_after_timeout_is_harmless(self):
        """The abandoned handler finishes after the caller gave up; the
        kernel must not crash on the orphaned reply."""
        env = Environment()
        fab = make_fabric(env)
        server, client = make_pair(env, fab, handler_delay=1.0)
        caught = []
        run_call(env, client, server, caught, timeout=0.1)
        env.run()  # drain everything, including the late handler
        assert isinstance(caught[0][1], RPCTimeout)


class TestMessageLoss:
    def test_lost_request_times_out_after_full_deadline(self):
        env = Environment()
        fab = make_fabric(env)
        server, client = make_pair(env, fab)
        fab.set_link_fault(0, 1, drop_prob=1.0)
        caught = []
        run_call(env, client, server, caught, timeout=0.5)
        env.run()
        t, err = caught[0]
        assert isinstance(err, RPCTimeout)
        assert "request lost" in str(err)
        assert t == pytest.approx(0.5, abs=0.01)
        assert fab.metrics.counter("fabric.dropped_messages").value >= 1

    def test_lost_request_without_deadline_fails_immediately(self):
        # timeout=None cannot wait forever on a lost message; the raise
        # is immediate (the no-deadline path is for trusted local use).
        env = Environment()
        fab = make_fabric(env)
        server, client = make_pair(env, fab)
        fab.set_link_fault(0, 1, drop_prob=1.0)
        caught = []
        run_call(env, client, server, caught)
        env.run()
        assert isinstance(caught[0][1], RPCTimeout)

    def test_lost_reply_times_out_and_handler_side_effects_land(self):
        """One-way fault on the reply direction: the handler runs to
        completion, the caller sees only silence."""
        env = Environment()
        fab = make_fabric(env)
        server = RPCEndpoint(env, fab, node_id=1, name="srv")
        client = RPCEndpoint(env, fab, node_id=0, name="cli")
        served = []

        def handler(payload, src):
            yield env.timeout(0.01)
            served.append(payload)
            return "reply"

        server.register("op", handler)
        fab.set_link_fault(1, 0, drop_prob=1.0, symmetric=False)
        caught = []
        run_call(env, client, server, caught, payload="x", timeout=0.5)
        env.run()
        assert served == ["x"]  # request got through
        assert isinstance(caught[0][1], RPCTimeout)

    def test_clear_link_fault_restores_delivery(self):
        env = Environment()
        fab = make_fabric(env)
        server, client = make_pair(env, fab)
        fab.set_link_fault(0, 1, drop_prob=1.0)
        fab.clear_link_fault(0, 1)
        caught = []
        run_call(env, client, server, caught, timeout=0.5)
        env.run()
        assert caught[0][1] == "ok"

    def test_loopback_immune_to_partition(self):
        env = Environment()
        fab = make_fabric(env)
        server = RPCEndpoint(env, fab, node_id=0, name="srv")
        client = RPCEndpoint(env, fab, node_id=0, name="cli")

        def handler(payload, src):
            yield env.timeout(0)
            return "local"

        server.register("op", handler)
        fab.isolate(0)
        caught = []
        run_call(env, client, server, caught, timeout=0.5)
        env.run()
        assert caught[0][1] == "local"


class TestDeathMidCall:
    def test_server_dies_while_serving_raises_rpcerror(self):
        env = Environment()
        fab = make_fabric(env)
        server, client = make_pair(env, fab, handler_delay=0.2)
        caught = []
        run_call(env, client, server, caught, timeout=5.0)

        def killer():
            yield env.timeout(0.1)  # mid-handler
            server.shutdown()

        env.process(killer())
        env.run()
        t, err = caught[0]
        assert isinstance(err, RPCError) and not isinstance(err, RPCTimeout)
        assert "died" in str(err)
        assert t < 5.0  # death is detected as an error, not a timeout

    def test_dead_endpoint_fails_fast_not_timeout(self):
        env = Environment()
        fab = make_fabric(env)
        server, client = make_pair(env, fab)
        server.shutdown()
        caught = []
        run_call(env, client, server, caught, timeout=5.0)
        env.run()
        t, err = caught[0]
        assert isinstance(err, RPCError) and not isinstance(err, RPCTimeout)
        assert t == pytest.approx(0.0, abs=0.01)


class TestHang:
    def test_hung_endpoint_only_deadline_detects(self):
        env = Environment()
        fab = make_fabric(env)
        server, client = make_pair(env, fab)
        server.hang()
        assert server.alive  # hung is not dead: no error signal exists
        caught = []
        run_call(env, client, server, caught, timeout=0.5)
        env.run()
        t, err = caught[0]
        assert isinstance(err, RPCTimeout)
        assert t == pytest.approx(0.5, abs=0.01)

    def test_unhang_restores_service(self):
        env = Environment()
        fab = make_fabric(env)
        server, client = make_pair(env, fab)
        server.hang()
        server.unhang()
        caught = []
        run_call(env, client, server, caught, timeout=0.5)
        env.run()
        assert caught[0][1] == "ok"

    def test_restart_clears_hang(self):
        env = Environment()
        fab = make_fabric(env)
        server, _ = make_pair(env, fab)
        server.hang()
        server.restart()
        assert not server.hung and server.alive
