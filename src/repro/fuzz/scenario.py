"""Scenario model + seeded generator for the fuzzer.

A :class:`Scenario` is the fuzzer's unit of work: one cluster topology,
one fault schedule, one dataset skew and one workload shape, all plain
data.  Everything the executor does is a deterministic function of the
scenario's fields, so a scenario round-trips through JSON (the case-file
format) and replays bit-for-bit — the property the shrinker and the
``repro fuzz --replay`` command rest on.

:class:`ScenarioGenerator` samples scenarios from seeded distributions
(one :class:`~repro.simcore.RandomStreams` child per scenario index):
topology size, replication, membership stack on/off, dataset skew
(lognormal sizes, the Fig-15 distribution), a workload kind drawn from
the pathological families the paper's §III-H worries about —

* ``uniform``    every client reads every file, shuffled per client;
* ``hotstorm``   most reads hammer one hot file (multi-tenant storm);
* ``thrash``     dataset sized past the NVMe cache, strided access
  order — maximal eviction churn;
* ``straggler``  one late, slow client stretches the epoch tail —

and a :meth:`FaultSchedule.random` draw that includes correlated
rack-crash bursts, flaky uplink switches, and gray failures (``hang``
servers answer probes never; ``degrade`` servers answer, slowly).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace

from ..cluster import ClusterSpec, TESTING
from ..faults import FaultEvent, FaultSchedule
from ..simcore import RandomStreams

__all__ = [
    "Scenario",
    "ScenarioGenerator",
    "Workload",
    "WORKLOAD_KINDS",
    "scenario_digest",
]

WORKLOAD_KINDS = ("uniform", "hotstorm", "thrash", "straggler")

#: fast-detection RPC + membership timing shared by every scenario (the
#: resilience/races experiments' values, so fuzz findings transfer)
BASE_OVERRIDES = dict(
    rpc_timeout=0.05,
    rpc_max_retries=4,
    rpc_backoff_base=1e-4,
    rpc_backoff_cap=2e-3,
    suspect_after=2,
    probation_period=0.02,
)
MEMBERSHIP_OVERRIDES = dict(
    membership_enabled=True,
    remap_enabled=True,
    repair_enabled=True,
    gossip_interval=0.005,
    suspect_to_dead=0.03,
    repair_bandwidth=50e6,
)


@dataclass(frozen=True)
class Workload:
    """What the reading clients do during one measured epoch."""

    kind: str = "uniform"
    #: nodes that run a reader process (subset of the topology)
    clients: tuple[int, ...] = (0,)
    #: reads each client issues per epoch
    reads_per_client: int = 16
    #: ``hotstorm``: probability a read targets the hot file
    hot_fraction: float = 0.8
    #: ``hotstorm``: index of the hot file
    hot_file: int = 0
    #: ``thrash``: stride through the file list (coprime with n_files)
    stride: int = 1
    #: ``straggler``: start delay of the last client (seconds)
    straggler_delay: float = 0.0
    #: ``straggler``: per-read think time of the last client (seconds)
    think: float = 0.0

    def __post_init__(self):
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(f"unknown workload kind {self.kind!r}")
        if not self.clients:
            raise ValueError("workload needs at least one client")


@dataclass(frozen=True)
class Scenario:
    """One fully-specified fuzz input (plain data; JSON round-trips)."""

    seed: int
    n_nodes: int
    replication: int = 1
    membership: bool = False
    epochs: int = 1
    n_files: int = 16
    mean_file_size: int = 25_000
    size_sigma: float = 0.0
    workload: Workload = field(default_factory=Workload)
    #: multi-tenant dimension: tenants sharing the fleet (1 = classic).
    #: Tenant 0 runs ``workload``; tenants 1..n-1 run ``tenant_workloads``.
    tenants: int = 1
    tenant_workloads: tuple[Workload, ...] = ()
    #: clairvoyant-prefetch dimension: stage each reader's planned
    #: accesses ahead of demand (False = classic reactive miss path;
    #: case files saved before the field exists load with the default).
    prefetch: bool = False
    faults: tuple[FaultEvent, ...] = ()

    def __post_init__(self):
        if self.n_nodes < 2:
            raise ValueError("scenarios need >= 2 nodes")
        if self.n_files < 1 or self.epochs < 1:
            raise ValueError("n_files and epochs must be >= 1")
        if any(c >= self.n_nodes for c in self.workload.clients):
            raise ValueError("workload client outside the topology")
        if self.tenants < 1:
            raise ValueError("tenants must be >= 1")
        if len(self.tenant_workloads) != self.tenants - 1:
            raise ValueError(
                "need exactly tenants-1 tenant_workloads "
                f"(got {len(self.tenant_workloads)} for {self.tenants} tenants)"
            )
        for wl in self.tenant_workloads:
            if any(c >= self.n_nodes for c in wl.clients):
                raise ValueError("tenant workload client outside the topology")

    # -- derived, deterministic views ----------------------------------
    def spec(self) -> ClusterSpec:
        overrides = dict(BASE_OVERRIDES)
        overrides["replication_factor"] = self.replication
        if self.membership:
            overrides.update(MEMBERSHIP_OVERRIDES)
        return TESTING.with_hvac(**overrides)

    def workload_of(self, tenant: int = 0) -> Workload:
        """Tenant ``j``'s workload shape (tenant 0 runs ``workload``)."""
        return self.workload if tenant == 0 else self.tenant_workloads[tenant - 1]

    def files(self, tenant: int = 0) -> list[tuple[str, int]]:
        """The dataset: paths + sizes, derived from the scenario seed.

        Single-tenant scenarios keep the classic ``/pfs/fuzz/`` paths
        (so existing fingerprints and case files replay unchanged);
        multi-tenant ones namespace each tenant under ``/pfs/t<j>/`` —
        the prefix :func:`repro.tenancy.tenant_of_path` attributes.
        """
        prefix = "/pfs/fuzz" if self.tenants == 1 else f"/pfs/t{tenant}/fuzz"
        if self.size_sigma > 0:
            stream = "fuzz.sizes" if tenant == 0 else f"fuzz.sizes.t{tenant}"
            sizes = RandomStreams(self.seed).lognormal_sizes(
                stream, self.mean_file_size, self.size_sigma,
                self.n_files,
            )
            sizes = [int(s) for s in sizes]
        else:
            sizes = [self.mean_file_size] * self.n_files
        return [(f"{prefix}/f{i:04d}", sizes[i]) for i in range(self.n_files)]

    def schedule(self) -> FaultSchedule:
        return FaultSchedule(self.faults)

    def heal_horizon(self) -> float:
        """When the last transient fault has healed (0 if no faults).

        Permanent faults (``duration is None``) do not extend this; the
        executor force-heals them at the horizon instead.
        """
        t = 0.0
        for ev in self.faults:
            if ev.kind == "flap":
                t = max(t, ev.time + 2.0 * ev.period * ev.cycles)
            elif ev.duration is not None:
                t = max(t, ev.time + ev.duration)
            else:
                t = max(t, ev.time)
        return t

    def plans(self, tenant: int = 0) -> dict[int, list[tuple[str, int]]]:
        """Per-client read plans for one measured epoch — pure data,
        derived only from scenario fields (replayed verbatim by the
        executor each epoch)."""
        files = self.files(tenant)
        n = len(files)
        wl = self.workload_of(tenant)
        child = "fuzz.workload" if tenant == 0 else f"fuzz.workload.t{tenant}"
        rand = RandomStreams(self.seed).child(child)
        plans: dict[int, list[tuple[str, int]]] = {}
        for node in wl.clients:
            if wl.kind == "uniform" or wl.kind == "straggler":
                order = rand.shuffled(f"order.n{node}", n)
                picks = [int(order[k % n]) for k in range(wl.reads_per_client)]
            elif wl.kind == "hotstorm":
                stream = rand.stream(f"storm.n{node}")
                picks = []
                for _ in range(wl.reads_per_client):
                    if float(stream.uniform()) < wl.hot_fraction:
                        picks.append(wl.hot_file % n)
                    else:
                        picks.append(int(stream.integers(n)))
            else:  # thrash: strided scan, per-client offset
                stride = max(1, wl.stride)
                picks = [
                    (node + k * stride) % n
                    for k in range(wl.reads_per_client)
                ]
            plans[node] = [files[i] for i in picks]
        return plans

    # -- JSON round-trip -----------------------------------------------
    def to_dict(self) -> dict:
        d = asdict(self)
        d["workload"] = asdict(self.workload)
        d["tenant_workloads"] = [asdict(wl) for wl in self.tenant_workloads]
        d["faults"] = [asdict(ev) for ev in self.faults]
        for ev in d["faults"]:
            if ev["link"] is not None:
                ev["link"] = list(ev["link"])
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "Scenario":
        d = dict(d)
        wl = dict(d.pop("workload"))
        wl["clients"] = tuple(wl["clients"])
        tenant_workloads = []
        for twl in d.pop("tenant_workloads", ()):
            twl = dict(twl)
            twl["clients"] = tuple(twl["clients"])
            tenant_workloads.append(Workload(**twl))
        faults = []
        for ev in d.pop("faults"):
            ev = dict(ev)
            if ev.get("link") is not None:
                ev["link"] = tuple(ev["link"])
            faults.append(FaultEvent(**ev))
        return cls(
            workload=Workload(**wl),
            tenant_workloads=tuple(tenant_workloads),
            faults=tuple(faults),
            **d,
        )


def scenario_digest(scenario: Scenario) -> str:
    """A stable content digest (case-file identity & corpus dedup key)."""
    from ..simcore import stable_hash64

    blob = json.dumps(scenario.to_dict(), sort_keys=True)
    return f"{stable_hash64(blob):016x}"


class ScenarioGenerator:
    """Seeded scenario sampler; ``sample(i)`` is a pure function of
    ``(seed, i)`` so campaigns replay exactly."""

    def __init__(self, seed: int = 0, max_nodes: int = 6):
        self.seed = int(seed)
        self.max_nodes = max_nodes

    def sample(self, index: int) -> Scenario:
        rand = RandomStreams(self.seed).child(f"fuzz.scenario.{index}")

        n_nodes = 3 + int(rand.stream("nodes").integers(self.max_nodes - 2))
        membership = bool(rand.stream("membership").integers(2))
        replication = 2 if membership else int(
            rand.stream("replication").integers(1, 3)
        )
        kind = str(rand.choice("kind", WORKLOAD_KINDS))
        sigma = float(rand.choice("sigma", (0.0, 0.6)))

        if kind == "thrash":
            # size the dataset past one node's cache share so the scan
            # order forces evictions (TESTING: 10 MB NVMe, 90% usable)
            n_files = 30 + int(rand.stream("files").integers(15))
            mean_size = int(rand.uniform("fsize", 250e3, 400e3))
            reads = n_files
        else:
            n_files = 8 + int(rand.stream("files").integers(25))
            mean_size = int(rand.uniform("fsize", 10e3, 120e3))
            reads = 8 + int(rand.stream("reads").integers(17))

        n_clients = 1 + int(rand.stream("clients").integers(n_nodes))
        clients = tuple(
            sorted(int(c) for c in rand.shuffled("which", n_nodes)[:n_clients])
        )
        workload = Workload(
            kind=kind,
            clients=clients,
            reads_per_client=reads,
            hot_fraction=float(rand.uniform("hot", 0.5, 0.9)),
            hot_file=int(rand.stream("hotfile").integers(n_files)),
            stride=int(rand.choice("stride", (1, 3, 7))),
            straggler_delay=(
                float(rand.uniform("lag", 0.001, 0.01))
                if kind == "straggler" else 0.0
            ),
            think=(
                float(rand.uniform("think", 0.0, 2e-4))
                if kind == "straggler" else 0.0
            ),
        )

        # Multi-tenant dimension: a minority of scenarios share the
        # fleet between 2-4 tenants, each with its own workload draw
        # (membership runs stay single-tenant — one dimension at a time).
        n_tenants = 1
        if not membership:
            n_tenants = int(rand.choice("tenants", (1, 1, 2, 3, 4)))
        tenant_workloads = []
        for j in range(1, n_tenants):
            tkind = str(rand.choice(f"t{j}.kind", WORKLOAD_KINDS))
            tn = 1 + int(rand.stream(f"t{j}.clients").integers(n_nodes))
            tclients = tuple(
                sorted(int(c) for c in rand.shuffled(f"t{j}.which", n_nodes)[:tn])
            )
            tenant_workloads.append(Workload(
                kind=tkind,
                clients=tclients,
                reads_per_client=4 + int(rand.stream(f"t{j}.reads").integers(13)),
                hot_fraction=float(rand.uniform(f"t{j}.hot", 0.5, 0.9)),
                hot_file=int(rand.stream(f"t{j}.hotfile").integers(n_files)),
                stride=int(rand.choice(f"t{j}.stride", (1, 3, 7))),
                straggler_delay=(
                    float(rand.uniform(f"t{j}.lag", 0.001, 0.01))
                    if tkind == "straggler" else 0.0
                ),
                think=(
                    float(rand.uniform(f"t{j}.think", 0.0, 2e-4))
                    if tkind == "straggler" else 0.0
                ),
            ))

        # Clairvoyant-prefetch dimension: a minority of single-tenant,
        # non-membership scenarios stage planned reads ahead of demand
        # (one dimension at a time, like tenancy).
        prefetch = (
            not membership
            and n_tenants == 1
            and int(rand.stream("prefetch").integers(3)) == 0
        )

        correlated = bool(rand.stream("correlated").integers(2))
        faults = FaultSchedule.random(
            n_nodes,
            seed=int(rand.stream("faults").integers(2**31)),
            horizon=0.08,
            crash_rate=float(rand.uniform("crash", 0.0, 30.0)),
            hang_rate=float(rand.uniform("hang", 0.0, 20.0)),
            degrade_rate=float(rand.uniform("degrade", 0.0, 20.0)),
            flaky_rate=float(rand.uniform("flaky", 0.0, 15.0)),
            mean_outage=float(rand.uniform("outage", 0.01, 0.08)),
            degrade_factor=float(rand.uniform("factor", 2.0, 12.0)),
            drop_prob=float(rand.uniform("drop", 0.2, 0.8)),
            rack_size=2 if correlated else 0,
            rack_crash_rate=float(rand.uniform("rack", 0.0, 8.0)) if correlated else 0.0,
            switch_flaky_rate=float(rand.uniform("switch", 0.0, 5.0)) if correlated else 0.0,
            burst_spread=0.005 if correlated else 0.0,
        )

        return Scenario(
            seed=int(rand.stream("seed").integers(2**31)),
            n_nodes=n_nodes,
            replication=replication,
            membership=membership,
            epochs=1 + int(rand.stream("epochs").integers(2)),
            n_files=n_files,
            mean_file_size=mean_size,
            size_sigma=sigma,
            workload=workload,
            tenants=n_tenants,
            tenant_workloads=tuple(tenant_workloads),
            prefetch=prefetch,
            faults=faults.events,
        )


def drop_fault(scenario: Scenario, index: int) -> Scenario:
    """``scenario`` minus its ``index``-th fault (shrinker move)."""
    faults = scenario.faults[:index] + scenario.faults[index + 1:]
    return replace(scenario, faults=faults)


def drop_client(scenario: Scenario, node: int) -> Scenario:
    """``scenario`` minus one reading client (shrinker move)."""
    clients = tuple(c for c in scenario.workload.clients if c != node)
    return replace(scenario, workload=replace(scenario.workload, clients=clients))


def drop_tenant(scenario: Scenario) -> Scenario:
    """``scenario`` minus its highest tenant (shrinker move; no-op on
    single-tenant scenarios)."""
    if scenario.tenants <= 1:
        return scenario
    return replace(
        scenario,
        tenants=scenario.tenants - 1,
        tenant_workloads=scenario.tenant_workloads[:-1],
    )
