"""Epoch-shuffled, sharded data loading (paper §II-B, Fig 2).

Reproduces the access pattern that makes DL I/O hard for a PFS:

* before every epoch the *entire* dataset is reshuffled globally
  (seeded; identical across storage backends — the Fig 14 invariant);
* the shuffled order is sharded round-robin over all data-parallel
  ranks (Horovod-style ``DistributedSampler``);
* each rank reads its shard in batches, one whole-file
  ``<open, read, close>`` per sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .dataset import SyntheticDataset

__all__ = ["Shard", "EpochPlan", "make_epoch_plan"]


@dataclass(frozen=True)
class Shard:
    """One rank's slice of one epoch's shuffled order."""

    rank: int
    indices: np.ndarray  # file indices, in read order

    def batches(self, batch_size: int) -> Iterator[np.ndarray]:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        for start in range(0, len(self.indices), batch_size):
            yield self.indices[start : start + batch_size]

    def __len__(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class EpochPlan:
    """The full I/O schedule of one epoch across all ranks."""

    epoch: int
    order: np.ndarray
    shards: tuple[Shard, ...]

    @property
    def n_ranks(self) -> int:
        return len(self.shards)


def make_epoch_plan(
    dataset: SyntheticDataset,
    epoch: int,
    n_ranks: int,
    shuffle_seed: int = 0,
    drop_remainder: bool = False,
) -> EpochPlan:
    """Shuffle globally, shard round-robin.

    ``drop_remainder=True`` truncates so every rank gets the same count
    (what synchronous SGD actually does to keep allreduce aligned).
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    order = dataset.epoch_order(epoch, seed=shuffle_seed)
    if drop_remainder:
        usable = (len(order) // n_ranks) * n_ranks
        order = order[:usable]
    shards = tuple(
        Shard(rank=r, indices=order[r::n_ranks]) for r in range(n_ranks)
    )
    return EpochPlan(epoch=epoch, order=order, shards=shards)
