"""Mercury-like RPC + bulk transfer substrate."""

from .endpoint import BulkHandle, RPCEndpoint, RPCError, RPCTimeout

__all__ = ["BulkHandle", "RPCEndpoint", "RPCError", "RPCTimeout"]
