#!/usr/bin/env python3
"""ResNet50-on-ImageNet21K scaling study (the paper's Fig 8a workload).

Runs the event-driven simulation across a node sweep for all five
compared systems, then prints the analytic model's full 1→1,024-node
sweep — the reproduction of the paper's headline result: GPFS saturates
at its metadata ceiling while HVAC tracks the XFS-on-NVMe upper bound.

    python examples/imagenet_scaling_study.py [--quick]
"""

import argparse

from repro.analysis import format_series
from repro.dl import IMAGENET21K, RESNET50
from repro.experiments import (
    Scale,
    node_scaling,
    node_scaling_analytic,
    normalized_to_gpfs,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller sweep for a fast demo")
    args = parser.parse_args()

    if args.quick:
        nodes = [2, 8]
        scale = Scale(files_per_rank=6, sim_batch_size=4,
                      repetitions=1, procs_per_node=4)
    else:
        nodes = [2, 8, 32, 64]
        scale = Scale(files_per_rank=12, sim_batch_size=8,
                      repetitions=1, procs_per_node=6)

    print("running event-driven simulation sweep "
          f"(nodes={nodes}, this takes a moment)...\n")
    des = node_scaling(
        RESNET50, IMAGENET21K, nodes, scale, total_epochs=10,
        systems=("gpfs", "hvac1", "hvac4", "xfs"),
    )
    print(des.render())

    full_nodes = [1, 4, 16, 32, 64, 128, 256, 512, 1024]
    analytic = node_scaling_analytic(
        RESNET50, IMAGENET21K, full_nodes, total_epochs=10
    )
    print()
    print(analytic.render() + "   [analytic, full sweep]")

    print()
    print(format_series(
        "nodes", full_nodes, normalized_to_gpfs(analytic),
        title="Improvement over GPFS, % (paper Fig 9a: >50% at 512/1024)",
        float_fmt="{:.1f}",
    ))


if __name__ == "__main__":
    main()
